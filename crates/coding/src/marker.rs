//! Marker codes: periodic resynchronization patterns.
//!
//! The simplest classical defence against synchronization errors
//! (pre-dating watermark codes): insert a fixed marker pattern every
//! `period` data bits, and let the decoder re-align each segment
//! against the next marker by local search. Combined with per-bit
//! repetition inside the segment, the scheme tolerates modest
//! deletion/insertion rates at a much worse rate/robustness
//! trade-off than watermark codes — which is exactly the comparison
//! experiment E9 draws.

use crate::error::CodingError;
use serde::{Deserialize, Serialize};

/// A marker code: `repeat`-fold repetition of each data bit, with a
/// marker pattern inserted before every segment of `period` data
/// bits.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MarkerCode {
    marker: Vec<bool>,
    period: usize,
    repeat: usize,
}

impl MarkerCode {
    /// Creates a marker code.
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::BadParameter`] when the marker is
    /// empty, the period is zero, or the repetition factor is zero or
    /// even (majority voting needs an odd count).
    pub fn new(marker: Vec<bool>, period: usize, repeat: usize) -> Result<Self, CodingError> {
        if marker.is_empty() {
            return Err(CodingError::BadParameter("marker is empty".to_owned()));
        }
        if period == 0 {
            return Err(CodingError::BadParameter("period is zero".to_owned()));
        }
        if repeat == 0 || repeat.is_multiple_of(2) {
            return Err(CodingError::BadParameter(
                "repetition factor must be odd and positive".to_owned(),
            ));
        }
        Ok(MarkerCode {
            marker,
            period,
            repeat,
        })
    }

    /// A reasonable default: marker `1010`, 8 data bits per segment,
    /// 3-fold repetition. The alternating marker is deliberately
    /// impossible inside intact repeated-data runs (whose runs have
    /// length ≥ 3), which keeps false marker matches rare.
    pub fn default_params() -> Self {
        MarkerCode::new(vec![true, false, true, false], 8, 3).expect("valid built-in parameters")
    }

    /// Code rate: data bits per transmitted bit.
    pub fn rate(&self) -> f64 {
        let seg_data = self.period;
        let seg_tx = self.marker.len() + self.period * self.repeat;
        seg_data as f64 / seg_tx as f64
    }

    /// Encodes data bits. The data length is padded (with zeros) to a
    /// whole number of segments; the decoder returns the padded
    /// length, and callers truncate.
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::BadLength`] for an empty message.
    pub fn encode(&self, data: &[bool]) -> Result<Vec<bool>, CodingError> {
        if data.is_empty() {
            return Err(CodingError::BadLength {
                got: 0,
                need: "a non-empty message".to_owned(),
            });
        }
        let mut padded = data.to_vec();
        while !padded.len().is_multiple_of(self.period) {
            padded.push(false);
        }
        let mut out = Vec::new();
        for segment in padded.chunks(self.period) {
            out.extend_from_slice(&self.marker);
            for &bit in segment {
                out.extend(std::iter::repeat_n(bit, self.repeat));
            }
        }
        Ok(out)
    }

    /// Number of segments for `k` data bits.
    pub fn segments(&self, k: usize) -> usize {
        k.div_ceil(self.period)
    }

    /// Transmitted length for `k` data bits.
    pub fn encoded_len(&self, k: usize) -> usize {
        self.segments(k) * (self.marker.len() + self.period * self.repeat)
    }

    /// Decodes a received stream back to `k` data bits (padding
    /// truncated). Re-alignment per segment: the decoder searches a
    /// window around the expected marker location for the best marker
    /// match, then majority-votes each repeated bit group.
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::BadLength`] when `k` is zero.
    /// Decoding itself always produces `k` bits — heavy noise shows
    /// up as bit errors, not failures.
    pub fn decode(&self, received: &[bool], k: usize) -> Result<Vec<bool>, CodingError> {
        let mut out = Vec::new();
        self.decode_into(received, k, &mut out)?;
        Ok(out)
    }

    /// [`Self::decode`] into a caller-owned output buffer (the marker
    /// decoder needs no other working memory); the decoded bits
    /// replace the contents of `out`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::decode`].
    // nsc-lint: hot
    pub fn decode_into(
        &self,
        received: &[bool],
        k: usize,
        out: &mut Vec<bool>,
    ) -> Result<(), CodingError> {
        if k == 0 {
            return Err(CodingError::BadLength {
                got: 0,
                need: "a positive data length".to_owned(),
            });
        }
        let seg_tx = self.marker.len() + self.period * self.repeat;
        let segments = self.segments(k);
        // Search window proportional to the expected drift per
        // segment.
        let window = (seg_tx / 2).max(4);
        out.clear();
        out.reserve(segments * self.period);
        let mut cursor: isize = 0;
        for _s in 0..segments {
            // Track alignment locally: under deletions/insertions the
            // true marker position drifts systematically away from
            // the global expectation, so the running cursor (reset by
            // each marker match) is the right anchor.
            let start = self.best_marker_match(received, cursor, window);
            let data_start = start + self.marker.len();
            for b in 0..self.period {
                let mut ones = 0usize;
                let mut total = 0usize;
                for r in 0..self.repeat {
                    let idx = data_start + b * self.repeat + r;
                    if idx < received.len() {
                        total += 1;
                        if received[idx] {
                            ones += 1;
                        }
                    }
                }
                out.push(total > 0 && ones * 2 > total);
            }
            cursor = (start + seg_tx) as isize;
        }
        out.truncate(k);
        Ok(())
    }

    /// Finds the offset in `received`, within `window` of `guess`,
    /// that best matches the marker pattern.
    fn best_marker_match(&self, received: &[bool], guess: isize, window: usize) -> usize {
        let lo = (guess - window as isize).max(0) as usize;
        let hi = ((guess + window as isize).max(0) as usize).min(received.len());
        let mut best = lo.min(received.len());
        let mut best_score = isize::MIN;
        for start in lo..=hi {
            let mut score = 0isize;
            for (off, &mb) in self.marker.iter().enumerate() {
                match received.get(start + off) {
                    Some(&rb) if rb == mb => score += 1,
                    Some(_) => score -= 1,
                    None => score -= 1,
                }
            }
            // Prefer matches closer to the guess on ties.
            let dist = (start as isize - guess).abs();
            let adjusted = score * 16 - dist;
            if adjusted > best_score {
                best_score = adjusted;
                best = start;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::{bit_error_rate, random_bits};
    use nsc_channel::alphabet::{Alphabet, Symbol};
    use nsc_channel::di::{DeletionInsertionChannel, DiParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn through_channel(bits: &[bool], p_d: f64, p_i: f64, seed: u64) -> Vec<bool> {
        let ch = DeletionInsertionChannel::new(
            Alphabet::binary(),
            DiParams::new(p_d, p_i, 0.0).unwrap(),
        );
        let input: Vec<Symbol> = bits.iter().map(|&b| Symbol::from_index(b as u32)).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        ch.transmit(&input, &mut rng)
            .received
            .iter()
            .map(|s| s.index() == 1)
            .collect()
    }

    #[test]
    fn construction_validation() {
        assert!(MarkerCode::new(vec![], 8, 3).is_err());
        assert!(MarkerCode::new(vec![true], 0, 3).is_err());
        assert!(MarkerCode::new(vec![true], 8, 2).is_err());
        assert!(MarkerCode::new(vec![true], 8, 0).is_err());
        assert!(MarkerCode::new(vec![true, false], 8, 3).is_ok());
    }

    #[test]
    fn rate_formula() {
        let c = MarkerCode::default_params();
        // 8 data bits per 4 + 24 transmitted.
        assert!((c.rate() - 8.0 / 28.0).abs() < 1e-12);
    }

    #[test]
    fn round_trip_noiseless() {
        let c = MarkerCode::default_params();
        let data = random_bits(64, &mut StdRng::seed_from_u64(0));
        let sent = c.encode(&data).unwrap();
        assert_eq!(sent.len(), c.encoded_len(64));
        let back = c.decode(&sent, 64).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn padding_is_truncated() {
        let c = MarkerCode::default_params();
        let data = random_bits(13, &mut StdRng::seed_from_u64(1));
        let sent = c.encode(&data).unwrap();
        let back = c.decode(&sent, 13).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn empty_inputs_rejected() {
        let c = MarkerCode::default_params();
        assert!(c.encode(&[]).is_err());
        assert!(c.decode(&[true], 0).is_err());
    }

    #[test]
    fn survives_light_deletions() {
        let c = MarkerCode::default_params();
        let data = random_bits(400, &mut StdRng::seed_from_u64(2));
        let sent = c.encode(&data).unwrap();
        let recv = through_channel(&sent, 0.02, 0.0, 3);
        let back = c.decode(&recv, 400).unwrap();
        let ber = bit_error_rate(&back, &data);
        assert!(ber < 0.08, "ber = {ber}");
    }

    #[test]
    fn survives_light_insertions() {
        let c = MarkerCode::default_params();
        let data = random_bits(400, &mut StdRng::seed_from_u64(4));
        let sent = c.encode(&data).unwrap();
        let recv = through_channel(&sent, 0.0, 0.02, 5);
        let back = c.decode(&recv, 400).unwrap();
        let ber = bit_error_rate(&back, &data);
        assert!(ber < 0.08, "ber = {ber}");
    }

    #[test]
    fn collapses_under_heavy_noise_unlike_watermark() {
        // The marker decoder produces output but with substantial
        // errors at rates the watermark code still handles — the
        // qualitative gap experiment E9 reports.
        let c = MarkerCode::default_params();
        let data = random_bits(400, &mut StdRng::seed_from_u64(6));
        let sent = c.encode(&data).unwrap();
        let recv = through_channel(&sent, 0.1, 0.0, 7);
        let back = c.decode(&recv, 400).unwrap();
        let ber = bit_error_rate(&back, &data);
        assert!(ber > 0.02, "marker code should degrade, ber = {ber}");
    }
}
