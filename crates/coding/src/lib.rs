//! Codes for reliable communication over deletion-insertion channels
//! *without* synchronization.
//!
//! Wang & Lee's §4.1 establishes that reliable non-synchronized
//! communication over a covert channel is possible in principle
//! (Dobrushin's coding theorem for channels with synchronization
//! errors) but observes that "the capacity is quite low and in
//! practice sophisticated coding techniques are required", citing
//! sequential decoding (Zigangirov) and watermark codes
//! (Davey & MacKay). This crate supplies those techniques:
//!
//! * [`lattice`] — the forward–backward drift decoder for the binary
//!   deletion-insertion channel (the synchronization engine);
//! * [`watermark`] — a Davey–MacKay-style watermark codec with a
//!   convolutional outer code ([`conv`]);
//! * [`marker`] — classical periodic-marker resynchronization;
//! * [`repetition`] — the negative baseline showing why synchronous
//!   codes collapse under deletions;
//! * [`rate`] — Monte-Carlo achievable-rate evaluation (experiment
//!   E9's harness);
//! * [`campaign`] — engine-scale coded campaigns with per-worker
//!   decode scratch: deterministic at any thread count,
//!   allocation-free on the decode hot path (DESIGN §13).
//!
//! # Example
//!
//! ```
//! use nsc_coding::conv::ConvCode;
//! use nsc_coding::watermark::WatermarkCode;
//!
//! let code = WatermarkCode::new(ConvCode::standard_half_rate(), 3, 7)?;
//! let data = vec![true, false, true, true];
//! let sent = code.encode(&data)?;
//! let back = code.decode(&sent, data.len(), 0.0, 0.0, 0.0)?;
//! assert_eq!(back, data);
//! # Ok::<(), nsc_coding::CodingError>(())
//! ```

pub mod bits;
pub mod campaign;
pub mod conv;
pub mod error;
pub mod interleave;
pub mod lattice;
pub mod ldpc;
pub mod marker;
pub mod rate;
pub mod repetition;
pub mod sequential;
pub mod watermark;
pub mod watermark_ldpc;

pub use error::CodingError;
