//! Convolutional codes with Viterbi decoding.
//!
//! The outer code of the non-synchronized transmission chain
//! (standing in for Davey & MacKay's GF(q) LDPC outer code, and a
//! nod to Zigangirov's sequential decoding for drop-out/insertion
//! channels cited by the paper). A rate-`1/v` feedforward encoder
//! with arbitrary generator polynomials, decoded by hard- or
//! soft-input Viterbi over the full trellis with terminating tail
//! bits.

use crate::error::CodingError;
use serde::{Deserialize, Serialize};

/// A rate-`1/v` feedforward convolutional code.
///
/// # Example
///
/// The classic (7, 5) octal, constraint length 3 code:
///
/// ```
/// use nsc_coding::conv::ConvCode;
///
/// let code = ConvCode::new(3, &[0o7, 0o5])?;
/// let data = vec![true, false, true, true];
/// let coded = code.encode(&data);
/// assert_eq!(coded.len(), (data.len() + 2) * 2); // tail included
/// assert_eq!(code.decode_hard(&coded)?, data);
/// # Ok::<(), nsc_coding::CodingError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConvCode {
    constraint: u32,
    generators: Vec<u32>,
}

/// Reusable Viterbi working memory: path metrics, the flattened
/// survivor table, and the per-state branch-output table. A scratch
/// is fully re-derived per decode, so it may be shared across codes
/// and frame lengths; after warm-up [`ConvCode::decode_soft_into`]
/// performs zero heap allocations.
#[derive(Debug, Clone, Default)]
pub struct ViterbiScratch {
    metric: Vec<f64>,
    next: Vec<f64>,
    /// `survivors[t * n_states + s]` = (previous state, input bit).
    survivors: Vec<(u32, bool)>,
    /// `outputs[(s * 2 + input) * v + j]` = coded bit `j` on the
    /// branch from state `s` with the given input — the allocation
    /// the seed decoder paid per branch, paid once per decode here.
    outputs: Vec<bool>,
}

impl ViterbiScratch {
    /// Creates an empty scratch; buffers are sized lazily on first
    /// use.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ConvCode {
    /// Creates a code with the given constraint length (memory + 1)
    /// and generator polynomials (bit `k` of a generator taps the
    /// shift register `k` steps back; generators are conventionally
    /// written in octal).
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::BadParameter`] when the constraint
    /// length is outside `2..=12`, fewer than two generators are
    /// given (rate 1 codes cannot correct anything), or a generator
    /// exceeds the constraint length.
    pub fn new(constraint: u32, generators: &[u32]) -> Result<Self, CodingError> {
        if !(2..=12).contains(&constraint) {
            return Err(CodingError::BadParameter(format!(
                "constraint length {constraint} outside 2..=12"
            )));
        }
        if generators.len() < 2 {
            return Err(CodingError::BadParameter(
                "need at least two generator polynomials".to_owned(),
            ));
        }
        for &g in generators {
            if g == 0 || g >= (1 << constraint) {
                return Err(CodingError::BadParameter(format!(
                    "generator {g:#o} invalid for constraint length {constraint}"
                )));
            }
        }
        Ok(ConvCode {
            constraint,
            generators: generators.to_vec(),
        })
    }

    /// The standard rate-1/2, constraint-3, (7, 5) octal code.
    pub fn standard_half_rate() -> Self {
        ConvCode::new(3, &[0o7, 0o5]).expect("valid built-in parameters")
    }

    /// The stronger rate-1/2, constraint-7, (171, 133) octal code
    /// used by Voyager and 802.11.
    pub fn nasa_half_rate() -> Self {
        ConvCode::new(7, &[0o171, 0o133]).expect("valid built-in parameters")
    }

    /// Output bits per input bit.
    pub fn outputs_per_input(&self) -> usize {
        self.generators.len()
    }

    /// Number of tail (flush) bits appended by [`Self::encode`].
    pub fn tail_bits(&self) -> usize {
        (self.constraint - 1) as usize
    }

    /// Coded length for `k` data bits, tail included.
    pub fn coded_len(&self, k: usize) -> usize {
        (k + self.tail_bits()) * self.outputs_per_input()
    }

    fn output_for(&self, state: u32, input: bool) -> Vec<bool> {
        let reg = (state << 1) | input as u32;
        self.generators
            .iter()
            .map(|&g| (reg & g).count_ones() % 2 == 1)
            .collect()
    }

    /// Encodes a data prefix *without* the terminating tail — the
    /// streaming view used by the sequential decoder, which appends
    /// the tail bits itself as explicit zero inputs.
    pub fn encode_prefix(&self, data: &[bool]) -> Vec<bool> {
        let mut out = Vec::with_capacity(data.len() * self.outputs_per_input());
        self.encode_prefix_into(data, &mut out);
        out
    }

    /// [`Self::encode_prefix`] into a reused buffer (cleared first).
    // nsc-lint: hot
    pub fn encode_prefix_into(&self, data: &[bool], out: &mut Vec<bool>) {
        out.clear();
        let mut state = 0u32;
        let mask = (1 << (self.constraint - 1)) - 1;
        for &bit in data {
            let reg = (state << 1) | bit as u32;
            out.extend(
                self.generators
                    .iter()
                    .map(|&g| (reg & g).count_ones() % 2 == 1),
            );
            state = ((state << 1) | bit as u32) & mask;
        }
    }

    /// Encodes `data`, appending `constraint − 1` zero tail bits to
    /// return the trellis to the all-zero state.
    pub fn encode(&self, data: &[bool]) -> Vec<bool> {
        let mut out = Vec::with_capacity(self.coded_len(data.len()));
        let mut state = 0u32;
        let mask = (1 << (self.constraint - 1)) - 1;
        for &bit in data
            .iter()
            .chain(std::iter::repeat_n(&false, self.tail_bits()))
        {
            out.extend(self.output_for(state, bit));
            state = ((state << 1) | bit as u32) & mask;
        }
        out
    }

    /// Hard-decision Viterbi decode. Input must be a full coded frame
    /// (as produced by [`Self::encode`]); returns the data bits with
    /// the tail stripped.
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::BadLength`] when the input length is
    /// not a whole number of output groups covering at least the
    /// tail.
    pub fn decode_hard(&self, coded: &[bool]) -> Result<Vec<bool>, CodingError> {
        let llrs: Vec<f64> = coded.iter().map(|&b| if b { -1.0 } else { 1.0 }).collect();
        self.decode_soft(&llrs)
    }

    /// Soft-input Viterbi decode. `llrs[i]` is the log-likelihood
    /// ratio of coded bit `i` (`> 0` favours 0, `< 0` favours 1); the
    /// branch metric is correlation against `±llr`.
    ///
    /// Allocating convenience wrapper over
    /// [`Self::decode_soft_into`]; the two are bit-identical by
    /// construction.
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::BadLength`] when the input is not a
    /// whole frame.
    pub fn decode_soft(&self, llrs: &[f64]) -> Result<Vec<bool>, CodingError> {
        let mut scratch = ViterbiScratch::new();
        let mut out = Vec::new();
        self.decode_soft_into(llrs, &mut scratch, &mut out)?;
        Ok(out)
    }

    /// [`Self::decode_soft`] into caller-owned working memory; the
    /// decoded data bits replace the contents of `out`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::decode_soft`].
    // nsc-lint: hot
    pub fn decode_soft_into(
        &self,
        llrs: &[f64],
        scratch: &mut ViterbiScratch,
        out: &mut Vec<bool>,
    ) -> Result<(), CodingError> {
        let v = self.outputs_per_input();
        if !llrs.len().is_multiple_of(v) || llrs.len() / v < self.tail_bits() {
            return Err(CodingError::BadLength {
                got: llrs.len(),
                // nsc-lint: allow(hot-alloc, reason = "cold validation path: a wrong-length frame aborts before the trellis pass starts")
                need: format!("a positive multiple of {v} covering the tail"),
            });
        }
        let steps = llrs.len() / v;
        let n_states = 1usize << (self.constraint - 1);
        let neg_inf = f64::NEG_INFINITY;
        // Branch-output table, one entry per (state, input, output).
        scratch.outputs.clear();
        for s in 0..n_states {
            for input in [false, true] {
                let reg = ((s as u32) << 1) | input as u32;
                scratch
                    .outputs
                    .extend(self.generators.iter().map(|&g| (reg & g).count_ones() % 2 == 1));
            }
        }
        scratch.metric.clear();
        scratch.metric.resize(n_states, neg_inf);
        scratch.metric[0] = 0.0;
        scratch.next.clear();
        scratch.next.resize(n_states, neg_inf);
        scratch.survivors.clear();
        scratch.survivors.resize(steps * n_states, (0u32, false));
        let mask = (n_states - 1) as u32;
        for t in 0..steps {
            let group = &llrs[t * v..(t + 1) * v];
            let surv = &mut scratch.survivors[t * n_states..(t + 1) * n_states];
            for x in scratch.next.iter_mut() {
                *x = neg_inf;
            }
            for (s, &m) in scratch.metric.iter().enumerate() {
                if m == neg_inf {
                    continue;
                }
                for input in [false, true] {
                    let branch_out = &scratch.outputs[(s * 2 + input as usize) * v..][..v];
                    // Correlation metric: +llr when the coded bit is
                    // 0, −llr when it is 1.
                    let branch: f64 = branch_out
                        .iter()
                        .zip(group)
                        .map(|(&b, &l)| if b { -l } else { l })
                        .sum();
                    let ns = (((s as u32) << 1) | input as u32) & mask;
                    let cand = m + branch;
                    if cand > scratch.next[ns as usize] {
                        scratch.next[ns as usize] = cand;
                        surv[ns as usize] = (s as u32, input);
                    }
                }
            }
            std::mem::swap(&mut scratch.metric, &mut scratch.next);
        }
        // Trace back from the all-zero state (the tail guarantees it).
        let mut state = 0u32;
        out.clear();
        for t in (0..steps).rev() {
            let (prev, input) = scratch.survivors[t * n_states + state as usize];
            out.push(input);
            state = prev;
        }
        out.reverse();
        out.truncate(steps - self.tail_bits());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::{bit_error_rate, random_bits};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn construction_validation() {
        assert!(ConvCode::new(1, &[1, 1]).is_err());
        assert!(ConvCode::new(13, &[1, 1]).is_err());
        assert!(ConvCode::new(3, &[0o7]).is_err());
        assert!(ConvCode::new(3, &[0o7, 0o10]).is_err());
        assert!(ConvCode::new(3, &[0o7, 0]).is_err());
        assert!(ConvCode::new(3, &[0o7, 0o5]).is_ok());
    }

    #[test]
    fn known_encoding_of_7_5_code() {
        // Encoding of [1] with (7,5): step 1 reg=1: g7=111 -> 1,
        // g5=101 -> 1; tails [0]: reg=10: g7 -> 1, g5 -> 0;
        // reg=100: g7 -> 1, g5 -> 1.
        let code = ConvCode::standard_half_rate();
        let coded = code.encode(&[true]);
        assert_eq!(coded, vec![true, true, true, false, true, true]);
    }

    #[test]
    fn round_trip_clean_channel() {
        let mut rng = StdRng::seed_from_u64(1);
        for code in [ConvCode::standard_half_rate(), ConvCode::nasa_half_rate()] {
            for len in [1usize, 7, 64, 500] {
                let data = random_bits(len, &mut rng);
                let decoded = code.decode_hard(&code.encode(&data)).unwrap();
                assert_eq!(decoded, data);
            }
        }
    }

    #[test]
    fn corrects_scattered_errors() {
        let code = ConvCode::standard_half_rate();
        let mut rng = StdRng::seed_from_u64(2);
        let data = random_bits(500, &mut rng);
        let mut coded = code.encode(&data);
        // Flip isolated bits, at least 6 apart — within the free
        // distance of the (7,5) code.
        let mut i = 3;
        while i < coded.len() {
            coded[i] = !coded[i];
            i += 12;
        }
        let decoded = code.decode_hard(&coded).unwrap();
        assert_eq!(decoded, data);
    }

    #[test]
    fn ber_improves_over_uncoded_at_moderate_noise() {
        let code = ConvCode::nasa_half_rate();
        let mut rng = StdRng::seed_from_u64(3);
        let data = random_bits(2000, &mut rng);
        let mut coded = code.encode(&data);
        let p = 0.05;
        for b in coded.iter_mut() {
            if rng.gen::<f64>() < p {
                *b = !*b;
            }
        }
        let decoded = code.decode_hard(&coded).unwrap();
        let ber = bit_error_rate(&decoded, &data);
        assert!(ber < p / 5.0, "coded BER {ber} vs channel {p}");
    }

    #[test]
    fn soft_input_beats_erasure_like_hard_decisions() {
        // Zero-LLR positions (erasures) cost the soft decoder nothing
        // definite; verify it still recovers when a tenth of the
        // positions are erased.
        let code = ConvCode::standard_half_rate();
        let mut rng = StdRng::seed_from_u64(4);
        let data = random_bits(800, &mut rng);
        let coded = code.encode(&data);
        let llrs: Vec<f64> = coded
            .iter()
            .enumerate()
            .map(|(i, &b)| {
                if i % 10 == 0 {
                    0.0
                } else if b {
                    -1.0
                } else {
                    1.0
                }
            })
            .collect();
        let decoded = code.decode_soft(&llrs).unwrap();
        assert_eq!(decoded, data);
    }

    #[test]
    fn length_validation() {
        let code = ConvCode::standard_half_rate();
        assert!(code.decode_hard(&[true]).is_err());
        assert!(code.decode_hard(&[]).is_err());
        assert!(matches!(
            code.decode_soft(&[0.0; 3]),
            Err(CodingError::BadLength { .. })
        ));
    }

    #[test]
    fn coded_len_accounts_for_tail() {
        let code = ConvCode::nasa_half_rate();
        assert_eq!(code.tail_bits(), 6);
        assert_eq!(code.coded_len(10), 32);
        assert_eq!(
            code.encode(&random_bits(10, &mut StdRng::seed_from_u64(5)))
                .len(),
            32
        );
    }
}
