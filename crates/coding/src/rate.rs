//! Monte-Carlo evaluation of codecs over the deletion-insertion
//! channel.
//!
//! Produces the rows behind experiment E9: for each channel
//! parameterization, the achieved reliable rate of each coding
//! scheme, alongside the information-theoretic comparators (the
//! erasure upper bound and the feedback lower bound of Theorems 1–5).

use crate::bits::{bit_error_rate, random_bits};
use crate::conv::ConvCode;
use crate::error::CodingError;
use crate::marker::MarkerCode;
use crate::repetition::RepetitionCode;
use crate::sequential::{SequentialConfig, SequentialDecoder};
use crate::watermark::WatermarkCode;
use crate::watermark_ldpc::LdpcWatermarkCode;
use nsc_channel::alphabet::{Alphabet, Symbol};
use nsc_channel::di::{DeletionInsertionChannel, DiParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Result of evaluating one codec at one channel setting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CodeEvaluation {
    /// Nominal code rate (data bits per transmitted bit).
    pub rate: f64,
    /// Mean bit error rate over the trials.
    pub ber: f64,
    /// Fraction of frames decoded without any bit error.
    pub frame_success: f64,
    /// Effective reliable throughput: `rate × frame_success` —
    /// a conservative "goodput" figure for whole-frame delivery.
    pub effective_rate: f64,
    /// Trials run.
    pub trials: usize,
}

/// Which codec to evaluate.
#[derive(Debug, Clone)]
pub enum Codec {
    /// A watermark code with a convolutional outer code.
    Watermark(WatermarkCode),
    /// A watermark code with an LDPC outer code (full Davey–MacKay).
    LdpcWatermark(LdpcWatermarkCode),
    /// A marker code.
    Marker(MarkerCode),
    /// Aligned repetition (the negative baseline).
    Repetition(RepetitionCode),
    /// Sequential (stack) decoding of a bare convolutional code —
    /// Zigangirov's historical approach (paper reference 12). Carries
    /// the expansion budget; the channel model is taken from the
    /// evaluation's parameters.
    Sequential {
        /// The convolutional code decoded.
        code: ConvCode,
        /// Node-expansion budget per frame.
        max_expansions: usize,
    },
}

impl Codec {
    /// Display name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Codec::Watermark(_) => "watermark+conv",
            Codec::LdpcWatermark(_) => "watermark+ldpc",
            Codec::Marker(_) => "marker",
            Codec::Repetition(_) => "repetition",
            Codec::Sequential { .. } => "sequential",
        }
    }
}

/// Runs `trials` random frames of `data_len` bits through the channel
/// and the codec, measuring error rates.
///
/// # Errors
///
/// Propagates codec construction/usage errors and invalid channel
/// parameters.
pub fn evaluate_codec(
    codec: &Codec,
    data_len: usize,
    p_d: f64,
    p_i: f64,
    p_s: f64,
    trials: usize,
    seed: u64,
) -> Result<CodeEvaluation, CodingError> {
    if data_len == 0 || trials == 0 {
        return Err(CodingError::BadParameter(
            "data_len and trials must be positive".to_owned(),
        ));
    }
    let params =
        DiParams::new(p_d, p_i, p_s).map_err(|e| CodingError::BadParameter(e.to_string()))?;
    let channel = DeletionInsertionChannel::new(Alphabet::binary(), params);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut total_ber = 0.0;
    let mut successes = 0usize;
    let mut nominal_rate = 0.0;
    for _ in 0..trials {
        let data = random_bits(data_len, &mut rng);
        let (sent, decoded) = match codec {
            Codec::Watermark(c) => {
                let sent = c.encode(&data)?;
                nominal_rate = c.rate(data_len);
                let recv = transmit_bits(&channel, &sent, &mut rng);
                let out = c.decode(&recv, data_len, p_d, p_i, p_s)?;
                (sent, out)
            }
            Codec::LdpcWatermark(c) => {
                if data_len != c.data_len() {
                    return Err(CodingError::BadLength {
                        got: data_len,
                        need: format!("exactly {} (LDPC frame size)", c.data_len()),
                    });
                }
                let sent = c.encode(&data)?;
                nominal_rate = c.rate();
                let recv = transmit_bits(&channel, &sent, &mut rng);
                let out = c.decode(&recv, p_d, p_i, p_s)?;
                (sent, out)
            }
            Codec::Marker(c) => {
                let sent = c.encode(&data)?;
                nominal_rate = data_len as f64 / sent.len() as f64;
                let recv = transmit_bits(&channel, &sent, &mut rng);
                let out = c.decode(&recv, data_len)?;
                (sent, out)
            }
            Codec::Repetition(c) => {
                let sent = c.encode(&data);
                nominal_rate = c.rate();
                let recv = transmit_bits(&channel, &sent, &mut rng);
                let out = c.decode(&recv, data_len);
                (sent, out)
            }
            Codec::Sequential {
                code,
                max_expansions,
            } => {
                let decoder = SequentialDecoder::new(
                    code.clone(),
                    SequentialConfig {
                        p_d,
                        p_i,
                        p_s,
                        max_expansions: *max_expansions,
                    },
                )?;
                let sent = code.encode(&data);
                nominal_rate = data_len as f64 / sent.len() as f64;
                let recv = transmit_bits(&channel, &sent, &mut rng);
                // A budget-exhausted frame is a total loss, not an
                // evaluation error: that is the measured behaviour.
                let out = decoder
                    .decode(&recv, data_len)
                    .unwrap_or_else(|_| vec![false; data_len]);
                (sent, out)
            }
        };
        let _ = sent;
        let ber = bit_error_rate(&decoded, &data);
        total_ber += ber;
        if ber == 0.0 {
            successes += 1;
        }
    }
    let frame_success = successes as f64 / trials as f64;
    Ok(CodeEvaluation {
        rate: nominal_rate,
        ber: total_ber / trials as f64,
        frame_success,
        effective_rate: nominal_rate * frame_success,
        trials,
    })
}

fn transmit_bits<R: rand::Rng + ?Sized>(
    channel: &DeletionInsertionChannel,
    bits: &[bool],
    rng: &mut R,
) -> Vec<bool> {
    let input: Vec<Symbol> = bits.iter().map(|&b| Symbol::from_index(b as u32)).collect();
    channel
        .transmit(&input, rng)
        .received
        .iter()
        .map(|s| s.index() == 1)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::ConvCode;

    fn watermark() -> Codec {
        Codec::Watermark(WatermarkCode::new(ConvCode::standard_half_rate(), 3, 11).unwrap())
    }

    #[test]
    fn validation() {
        assert!(evaluate_codec(&watermark(), 0, 0.1, 0.0, 0.0, 1, 0).is_err());
        assert!(evaluate_codec(&watermark(), 10, 0.1, 0.0, 0.0, 0, 0).is_err());
        assert!(evaluate_codec(&watermark(), 10, 1.5, 0.0, 0.0, 1, 0).is_err());
    }

    #[test]
    fn noiseless_channel_gives_perfect_frames() {
        for codec in [
            watermark(),
            Codec::Marker(MarkerCode::default_params()),
            Codec::Repetition(RepetitionCode::new(3).unwrap()),
        ] {
            let e = evaluate_codec(&codec, 64, 0.0, 0.0, 0.0, 3, 1).unwrap();
            assert_eq!(e.frame_success, 1.0, "{}", codec.name());
            assert_eq!(e.ber, 0.0);
            assert!((e.effective_rate - e.rate).abs() < 1e-12);
        }
    }

    #[test]
    fn watermark_beats_marker_beats_repetition_under_deletions() {
        let p_d = 0.06;
        let wm = evaluate_codec(&watermark(), 150, p_d, 0.0, 0.0, 4, 2).unwrap();
        let mk = evaluate_codec(
            &Codec::Marker(MarkerCode::default_params()),
            150,
            p_d,
            0.0,
            0.0,
            4,
            2,
        )
        .unwrap();
        let rp = evaluate_codec(
            &Codec::Repetition(RepetitionCode::new(5).unwrap()),
            150,
            p_d,
            0.0,
            0.0,
            4,
            2,
        )
        .unwrap();
        assert!(wm.ber <= mk.ber, "wm {} vs mk {}", wm.ber, mk.ber);
        assert!(mk.ber < rp.ber, "mk {} vs rp {}", mk.ber, rp.ber);
        assert!(rp.ber > 0.2, "repetition must collapse, ber {}", rp.ber);
    }

    #[test]
    fn names() {
        assert_eq!(watermark().name(), "watermark+conv");
        assert_eq!(Codec::Marker(MarkerCode::default_params()).name(), "marker");
        assert_eq!(
            Codec::Repetition(RepetitionCode::new(3).unwrap()).name(),
            "repetition"
        );
    }
}
