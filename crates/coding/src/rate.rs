//! Monte-Carlo evaluation of codecs over the deletion-insertion
//! channel.
//!
//! Produces the rows behind experiment E9: for each channel
//! parameterization, the achieved reliable rate of each coding
//! scheme, alongside the information-theoretic comparators (the
//! erasure upper bound and the feedback lower bound of Theorems 1–5).

use crate::bits::{bit_error_rate, random_bits};
use crate::conv::ConvCode;
use crate::error::CodingError;
use crate::marker::MarkerCode;
use crate::repetition::RepetitionCode;
use crate::sequential::{SequentialConfig, SequentialDecoder, SequentialScratch};
use crate::watermark::{WatermarkCode, WatermarkScratch};
use crate::watermark_ldpc::{LdpcWatermarkCode, LdpcWatermarkScratch};
use nsc_channel::alphabet::{Alphabet, Symbol};
use nsc_channel::di::{DeletionInsertionChannel, DiParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Result of evaluating one codec at one channel setting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CodeEvaluation {
    /// Nominal code rate (data bits per transmitted bit).
    pub rate: f64,
    /// Mean bit error rate over the trials.
    pub ber: f64,
    /// Fraction of frames decoded without any bit error.
    pub frame_success: f64,
    /// Effective reliable throughput: `rate × frame_success` —
    /// a conservative "goodput" figure for whole-frame delivery.
    pub effective_rate: f64,
    /// Trials run.
    pub trials: usize,
}

/// Which codec to evaluate.
#[derive(Debug, Clone)]
pub enum Codec {
    /// A watermark code with a convolutional outer code.
    Watermark(WatermarkCode),
    /// A watermark code with an LDPC outer code (full Davey–MacKay).
    LdpcWatermark(LdpcWatermarkCode),
    /// A marker code.
    Marker(MarkerCode),
    /// Aligned repetition (the negative baseline).
    Repetition(RepetitionCode),
    /// Sequential (stack) decoding of a bare convolutional code —
    /// Zigangirov's historical approach (paper reference 12). Carries
    /// the expansion budget; the channel model is taken from the
    /// evaluation's parameters.
    Sequential {
        /// The convolutional code decoded.
        code: ConvCode,
        /// Node-expansion budget per frame.
        max_expansions: usize,
    },
}

impl Codec {
    /// Display name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Codec::Watermark(_) => "watermark+conv",
            Codec::LdpcWatermark(_) => "watermark+ldpc",
            Codec::Marker(_) => "marker",
            Codec::Repetition(_) => "repetition",
            Codec::Sequential { .. } => "sequential",
        }
    }

    /// Encodes one data frame. The frame length must match
    /// `data_len` (exactly [`LdpcWatermarkCode::data_len`] for the
    /// LDPC variant).
    ///
    /// # Errors
    ///
    /// Propagates the underlying encoder's validation errors.
    pub fn encode(&self, data: &[bool]) -> Result<Vec<bool>, CodingError> {
        match self {
            Codec::Watermark(c) => c.encode(data),
            Codec::LdpcWatermark(c) => c.encode(data),
            Codec::Marker(c) => c.encode(data),
            Codec::Repetition(c) => Ok(c.encode(data)),
            Codec::Sequential { code, .. } => Ok(code.encode(data)),
        }
    }

    /// Nominal code rate for `data_len` data bits per frame of
    /// `encoded_len` transmitted bits.
    pub fn nominal_rate(&self, data_len: usize, encoded_len: usize) -> f64 {
        match self {
            Codec::Watermark(c) => c.rate(data_len),
            Codec::LdpcWatermark(c) => c.rate(),
            Codec::Repetition(c) => c.rate(),
            Codec::Marker(_) | Codec::Sequential { .. } => data_len as f64 / encoded_len as f64,
        }
    }
}

/// Reusable per-worker decode working memory covering every
/// [`Codec`] variant plus the decoded-bits output buffer. One
/// instance serves all trials of an evaluation or campaign worker;
/// after the first frame the watermark/marker/repetition decode
/// paths perform no heap allocation (see DESIGN §13).
#[derive(Debug, Clone, Default)]
pub struct CodecScratch {
    pub(crate) watermark: WatermarkScratch,
    pub(crate) ldpc: LdpcWatermarkScratch,
    pub(crate) sequential: SequentialScratch,
    /// Decoded data bits of the most recent frame.
    pub(crate) decoded: Vec<bool>,
}

impl CodecScratch {
    /// Creates an empty scratch; buffers are sized lazily on first
    /// use.
    pub fn new() -> Self {
        Self::default()
    }

    /// The decoded data bits of the most recent frame.
    pub fn decoded(&self) -> &[bool] {
        &self.decoded
    }
}

/// Decodes one received frame for `codec` into `scratch.decoded`,
/// reusing the scratch buffers across calls. `seq` must be the
/// pre-constructed decoder when `codec` is [`Codec::Sequential`].
pub(crate) fn decode_received(
    codec: &Codec,
    seq: Option<&SequentialDecoder>,
    scratch: &mut CodecScratch,
    received: &[bool],
    data_len: usize,
    p_d: f64,
    p_i: f64,
    p_s: f64,
) -> Result<(), CodingError> {
    match codec {
        Codec::Watermark(c) => c.decode_into(
            &mut scratch.watermark,
            received,
            data_len,
            p_d,
            p_i,
            p_s,
            &mut scratch.decoded,
        ),
        Codec::LdpcWatermark(c) => c.decode_into(
            &mut scratch.ldpc,
            received,
            p_d,
            p_i,
            p_s,
            &mut scratch.decoded,
        ),
        Codec::Marker(c) => c.decode_into(received, data_len, &mut scratch.decoded),
        Codec::Repetition(c) => {
            c.decode_into(received, data_len, &mut scratch.decoded);
            Ok(())
        }
        Codec::Sequential { .. } => {
            let decoder = seq.expect("sequential decoder must be pre-constructed");
            decoder.decode_into(received, data_len, &mut scratch.sequential, &mut scratch.decoded)
        }
    }
}

/// Builds the sequential decoder for a [`Codec::Sequential`] (or
/// `None` for the self-contained codecs), hoisted out of the trial
/// loop so the per-trial path stays allocation-free.
pub(crate) fn prepare_sequential(
    codec: &Codec,
    p_d: f64,
    p_i: f64,
    p_s: f64,
) -> Result<Option<SequentialDecoder>, CodingError> {
    match codec {
        Codec::Sequential {
            code,
            max_expansions,
        } => Ok(Some(SequentialDecoder::new(
            code.clone(),
            SequentialConfig {
                p_d,
                p_i,
                p_s,
                max_expansions: *max_expansions,
            },
        )?)),
        _ => Ok(None),
    }
}

/// Runs `trials` random frames of `data_len` bits through the channel
/// and the codec, measuring error rates.
///
/// # Errors
///
/// Propagates codec construction/usage errors and invalid channel
/// parameters.
pub fn evaluate_codec(
    codec: &Codec,
    data_len: usize,
    p_d: f64,
    p_i: f64,
    p_s: f64,
    trials: usize,
    seed: u64,
) -> Result<CodeEvaluation, CodingError> {
    if data_len == 0 || trials == 0 {
        return Err(CodingError::BadParameter(
            "data_len and trials must be positive".to_owned(),
        ));
    }
    if let Codec::LdpcWatermark(c) = codec {
        if data_len != c.data_len() {
            return Err(CodingError::BadLength {
                got: data_len,
                need: format!("exactly {} (LDPC frame size)", c.data_len()),
            });
        }
    }
    let params =
        DiParams::new(p_d, p_i, p_s).map_err(|e| CodingError::BadParameter(e.to_string()))?;
    let channel = DeletionInsertionChannel::new(Alphabet::binary(), params);
    let seq_decoder = prepare_sequential(codec, p_d, p_i, p_s)?;
    let mut scratch = CodecScratch::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut total_ber = 0.0;
    let mut successes = 0usize;
    let mut nominal_rate = 0.0;
    for _ in 0..trials {
        let data = random_bits(data_len, &mut rng);
        let sent = codec.encode(&data)?;
        nominal_rate = codec.nominal_rate(data_len, sent.len());
        let recv = transmit_bits(&channel, &sent, &mut rng);
        match decode_received(
            codec,
            seq_decoder.as_ref(),
            &mut scratch,
            &recv,
            data_len,
            p_d,
            p_i,
            p_s,
        ) {
            Ok(()) => {}
            // A budget-exhausted sequential frame is a total loss,
            // not an evaluation error: that is the measured
            // behaviour. The other codecs always produce output, so
            // their errors stay hard.
            Err(_) if matches!(codec, Codec::Sequential { .. }) => {
                scratch.decoded.clear();
                scratch.decoded.resize(data_len, false);
            }
            Err(e) => return Err(e),
        }
        let ber = bit_error_rate(&scratch.decoded, &data);
        total_ber += ber;
        if ber == 0.0 {
            successes += 1;
        }
    }
    let frame_success = successes as f64 / trials as f64;
    Ok(CodeEvaluation {
        rate: nominal_rate,
        ber: total_ber / trials as f64,
        frame_success,
        effective_rate: nominal_rate * frame_success,
        trials,
    })
}

fn transmit_bits<R: rand::Rng + ?Sized>(
    channel: &DeletionInsertionChannel,
    bits: &[bool],
    rng: &mut R,
) -> Vec<bool> {
    let input: Vec<Symbol> = bits.iter().map(|&b| Symbol::from_index(b as u32)).collect();
    channel
        .transmit(&input, rng)
        .received
        .iter()
        .map(|s| s.index() == 1)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::ConvCode;

    fn watermark() -> Codec {
        Codec::Watermark(WatermarkCode::new(ConvCode::standard_half_rate(), 3, 11).unwrap())
    }

    #[test]
    fn validation() {
        assert!(evaluate_codec(&watermark(), 0, 0.1, 0.0, 0.0, 1, 0).is_err());
        assert!(evaluate_codec(&watermark(), 10, 0.1, 0.0, 0.0, 0, 0).is_err());
        assert!(evaluate_codec(&watermark(), 10, 1.5, 0.0, 0.0, 1, 0).is_err());
    }

    #[test]
    fn noiseless_channel_gives_perfect_frames() {
        for codec in [
            watermark(),
            Codec::Marker(MarkerCode::default_params()),
            Codec::Repetition(RepetitionCode::new(3).unwrap()),
        ] {
            let e = evaluate_codec(&codec, 64, 0.0, 0.0, 0.0, 3, 1).unwrap();
            assert_eq!(e.frame_success, 1.0, "{}", codec.name());
            assert_eq!(e.ber, 0.0);
            assert!((e.effective_rate - e.rate).abs() < 1e-12);
        }
    }

    #[test]
    fn watermark_beats_marker_beats_repetition_under_deletions() {
        let p_d = 0.06;
        let wm = evaluate_codec(&watermark(), 150, p_d, 0.0, 0.0, 4, 2).unwrap();
        let mk = evaluate_codec(
            &Codec::Marker(MarkerCode::default_params()),
            150,
            p_d,
            0.0,
            0.0,
            4,
            2,
        )
        .unwrap();
        let rp = evaluate_codec(
            &Codec::Repetition(RepetitionCode::new(5).unwrap()),
            150,
            p_d,
            0.0,
            0.0,
            4,
            2,
        )
        .unwrap();
        assert!(wm.ber <= mk.ber, "wm {} vs mk {}", wm.ber, mk.ber);
        assert!(mk.ber < rp.ber, "mk {} vs rp {}", mk.ber, rp.ber);
        assert!(rp.ber > 0.2, "repetition must collapse, ber {}", rp.ber);
    }

    #[test]
    fn names() {
        assert_eq!(watermark().name(), "watermark+conv");
        assert_eq!(Codec::Marker(MarkerCode::default_params()).name(), "marker");
        assert_eq!(
            Codec::Repetition(RepetitionCode::new(3).unwrap()).name(),
            "repetition"
        );
    }
}
