//! The full Davey–MacKay construction: LDPC outer code over the
//! watermark inner code.
//!
//! [`crate::watermark::WatermarkCode`] uses a convolutional outer
//! code (fast, streaming). This variant is closer to the original
//! paper the authors cite (reference 13, Davey & MacKay 2001): the outer code
//! is an LDPC whose belief-propagation decoder consumes the drift
//! lattice's *soft* posteriors directly, with no intermediate hard
//! decision.

use crate::error::CodingError;
use crate::lattice::{DecoderScratch, DriftLattice};
use crate::ldpc::{LdpcCode, LdpcScratch};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Reusable decode working memory for [`LdpcWatermarkCode`]: the
/// drift lattice's band scratch, cached watermark/prior frames, the
/// per-coded-bit posterior buffer handed to belief propagation, and
/// the BP message tables themselves ([`LdpcScratch`]). Both the inner
/// lattice pass and the outer BP pass are allocation-free after
/// warm-up (see DESIGN §14).
#[derive(Debug, Clone, Default)]
pub struct LdpcWatermarkScratch {
    lattice: DecoderScratch,
    ldpc: LdpcScratch,
    watermark: Vec<bool>,
    priors: Vec<f64>,
    p_one: Vec<f64>,
    frame_key: Option<(u64, usize, usize)>,
}

impl LdpcWatermarkScratch {
    /// Creates an empty scratch; buffers are sized lazily on first
    /// use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A watermark codec with an LDPC outer code.
///
/// # Example
///
/// ```
/// use nsc_coding::watermark_ldpc::LdpcWatermarkCode;
///
/// let code = LdpcWatermarkCode::new(128, 128, 3, 3, 0xD00D)?;
/// let data: Vec<bool> = (0..128).map(|i| i % 5 == 0).collect();
/// let sent = code.encode(&data)?;
/// let back = code.decode(&sent, 0.0, 0.0, 0.0)?;
/// assert_eq!(back, data);
/// # Ok::<(), nsc_coding::CodingError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LdpcWatermarkCode {
    outer: LdpcCode,
    block_len: usize,
    watermark_seed: u64,
    bp_iterations: usize,
}

impl LdpcWatermarkCode {
    /// Creates a codec: `k` data bits, `m` LDPC parity bits, LDPC
    /// column weight `weight`, sparse inner block length `block_len`,
    /// and a shared seed for both the LDPC structure and the
    /// watermark.
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::BadParameter`] for invalid LDPC
    /// parameters or a zero `block_len`.
    pub fn new(
        k: usize,
        m: usize,
        weight: usize,
        block_len: usize,
        seed: u64,
    ) -> Result<Self, CodingError> {
        if block_len == 0 {
            return Err(CodingError::BadParameter(
                "block length must be positive".to_owned(),
            ));
        }
        Ok(LdpcWatermarkCode {
            outer: LdpcCode::new(k, m, weight, seed)?,
            block_len,
            watermark_seed: seed ^ 0x57A7E,
            bp_iterations: 60,
        })
    }

    /// Data bits per frame.
    pub fn data_len(&self) -> usize {
        self.outer.data_len()
    }

    /// Transmitted frame length.
    pub fn frame_len(&self) -> usize {
        self.outer.block_len() * self.block_len
    }

    /// Code rate in data bits per transmitted bit.
    pub fn rate(&self) -> f64 {
        self.data_len() as f64 / self.frame_len() as f64
    }

    /// The pseudorandom watermark frame shared by both ends.
    pub fn watermark(&self) -> Vec<bool> {
        crate::bits::random_bits(
            self.frame_len(),
            &mut StdRng::seed_from_u64(self.watermark_seed),
        )
    }

    /// Per-position sparse priors: 0.5 at data-carrying positions
    /// (first of each block), 0 elsewhere.
    pub fn priors(&self) -> Vec<f64> {
        (0..self.frame_len())
            .map(|i| if i % self.block_len == 0 { 0.5 } else { 0.0 })
            .collect()
    }

    /// Encodes a full frame of `data_len()` bits.
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::BadLength`] for a wrong-sized message.
    pub fn encode(&self, data: &[bool]) -> Result<Vec<bool>, CodingError> {
        if data.len() != self.data_len() {
            return Err(CodingError::BadLength {
                got: data.len(),
                need: format!("exactly {} data bits", self.data_len()),
            });
        }
        let coded = self.outer.encode(data);
        let mut frame = self.watermark();
        for (b, &bit) in coded.iter().enumerate() {
            let pos = b * self.block_len;
            frame[pos] ^= bit;
        }
        Ok(frame)
    }

    /// Decodes a received stream given the channel parameters.
    ///
    /// Allocating convenience wrapper over [`Self::decode_into`];
    /// the two are bit-identical by construction.
    ///
    /// # Errors
    ///
    /// Propagates lattice and LDPC errors.
    pub fn decode(
        &self,
        received: &[bool],
        p_d: f64,
        p_i: f64,
        p_s: f64,
    ) -> Result<Vec<bool>, CodingError> {
        let mut scratch = LdpcWatermarkScratch::new();
        let mut out = Vec::new();
        self.decode_into(&mut scratch, received, p_d, p_i, p_s, &mut out)?;
        Ok(out)
    }

    /// [`Self::decode`] into caller-owned working memory; the decoded
    /// data bits replace the contents of `out`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::decode`].
    // nsc-lint: hot
    pub fn decode_into(
        &self,
        scratch: &mut LdpcWatermarkScratch,
        received: &[bool],
        p_d: f64,
        p_i: f64,
        p_s: f64,
        out: &mut Vec<bool>,
    ) -> Result<(), CodingError> {
        let frame_len = self.frame_len();
        let key = (self.watermark_seed, self.block_len, frame_len);
        if scratch.frame_key != Some(key) {
            crate::bits::random_bits_into(
                frame_len,
                &mut StdRng::seed_from_u64(self.watermark_seed),
                &mut scratch.watermark,
            );
            scratch.priors.clear();
            scratch.priors.extend(
                (0..frame_len).map(|i| if i % self.block_len == 0 { 0.5 } else { 0.0 }),
            );
            scratch.frame_key = Some(key);
        }
        let lattice = DriftLattice::new(p_d, p_i, p_s)?;
        let post = lattice.posteriors_into(
            &mut scratch.lattice,
            &scratch.watermark,
            &scratch.priors,
            received,
        )?;
        // Per coded-bit posteriors at the data-carrying positions,
        // fed to belief propagation *as probabilities*.
        scratch.p_one.clear();
        scratch
            .p_one
            .extend((0..self.outer.block_len()).map(|b| post[b * self.block_len]));
        self.outer.decode_from_posteriors_into(
            &mut scratch.ldpc,
            &scratch.p_one,
            self.bp_iterations,
            out,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::{bit_error_rate, random_bits};
    use nsc_channel::alphabet::{Alphabet, Symbol};
    use nsc_channel::di::{DeletionInsertionChannel, DiParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn through_channel(bits: &[bool], p_d: f64, p_i: f64, seed: u64) -> Vec<bool> {
        let ch = DeletionInsertionChannel::new(
            Alphabet::binary(),
            DiParams::new(p_d, p_i, 0.0).unwrap(),
        );
        let input: Vec<Symbol> = bits.iter().map(|&b| Symbol::from_index(b as u32)).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        ch.transmit(&input, &mut rng)
            .received
            .iter()
            .map(|s| s.index() == 1)
            .collect()
    }

    fn codec() -> LdpcWatermarkCode {
        LdpcWatermarkCode::new(200, 200, 3, 3, 0xBEE).unwrap()
    }

    #[test]
    fn construction_and_rate() {
        assert!(LdpcWatermarkCode::new(10, 10, 3, 0, 0).is_err());
        assert!(LdpcWatermarkCode::new(0, 10, 3, 3, 0).is_err());
        let c = codec();
        assert_eq!(c.data_len(), 200);
        assert_eq!(c.frame_len(), 1200);
        assert!((c.rate() - 200.0 / 1200.0).abs() < 1e-12);
    }

    #[test]
    fn round_trip_noiseless() {
        let c = codec();
        let data = random_bits(200, &mut StdRng::seed_from_u64(0));
        let sent = c.encode(&data).unwrap();
        assert_eq!(c.decode(&sent, 0.0, 0.0, 0.0).unwrap(), data);
        assert!(c.encode(&data[..10]).is_err());
    }

    #[test]
    fn survives_deletions() {
        let c = codec();
        let p_d = 0.06;
        let data = random_bits(200, &mut StdRng::seed_from_u64(1));
        let sent = c.encode(&data).unwrap();
        let recv = through_channel(&sent, p_d, 0.0, 2);
        let back = c.decode(&recv, p_d, 0.0, 0.0).unwrap();
        let ber = bit_error_rate(&back, &data);
        assert!(ber < 0.02, "ber = {ber}");
    }

    #[test]
    fn survives_combined_channel() {
        let c = codec();
        let (p_d, p_i) = (0.04, 0.04);
        let data = random_bits(200, &mut StdRng::seed_from_u64(3));
        let sent = c.encode(&data).unwrap();
        let recv = through_channel(&sent, p_d, p_i, 4);
        let back = c.decode(&recv, p_d, p_i, 0.0).unwrap();
        let ber = bit_error_rate(&back, &data);
        assert!(ber < 0.03, "ber = {ber}");
    }

    #[test]
    fn dirty_scratch_decode_matches_allocating_decode() {
        // A scratch reused across noise levels (and therefore across
        // differently-shaped lattice bands and BP message tables)
        // must reproduce the allocating decode bit-for-bit.
        let c = codec();
        let mut scratch = LdpcWatermarkScratch::new();
        let mut out = Vec::new();
        for (seed, &(p_d, p_i)) in [(0.0, 0.0), (0.06, 0.0), (0.04, 0.04)].iter().enumerate() {
            let data = random_bits(200, &mut StdRng::seed_from_u64(seed as u64));
            let sent = c.encode(&data).unwrap();
            let recv = through_channel(&sent, p_d, p_i, seed as u64 + 10);
            c.decode_into(&mut scratch, &recv, p_d, p_i, 0.0, &mut out)
                .unwrap();
            assert_eq!(
                out,
                c.decode(&recv, p_d, p_i, 0.0).unwrap(),
                "p_d={p_d} p_i={p_i}"
            );
        }
    }

    #[test]
    fn soft_chain_beats_independent_hard_decisions() {
        // Decode the same received stream twice: once through BP on
        // soft posteriors, once by hard-thresholding posteriors and
        // counting errors pre-outer-code. BP must strictly reduce the
        // error count on a noisy frame.
        let c = codec();
        let p_d = 0.08;
        let data = random_bits(200, &mut StdRng::seed_from_u64(5));
        let sent = c.encode(&data).unwrap();
        let recv = through_channel(&sent, p_d, 0.0, 6);
        let soft = c.decode(&recv, p_d, 0.0, 0.0).unwrap();
        let soft_ber = bit_error_rate(&soft, &data);
        // Raw (pre-outer-code) hard decisions on the data positions.
        let lattice = DriftLattice::new(p_d, 0.0, 0.0).unwrap();
        let post = lattice
            .posteriors(&c.watermark(), &c.priors(), &recv)
            .unwrap();
        let raw: Vec<bool> = (0..200).map(|b| post[b * 3] > 0.5).collect();
        let coded = c.outer.encode(&data);
        let raw_ref: Vec<bool> = coded[..200].to_vec();
        let raw_ber = bit_error_rate(&raw, &raw_ref);
        assert!(
            soft_ber < raw_ber || raw_ber == 0.0,
            "soft {soft_ber} vs raw {raw_ber}"
        );
    }
}
