//! Sequential (stack) decoding over the deletion-insertion channel —
//! Zigangirov's approach, reference 12 of the paper.
//!
//! Before watermark codes, the way to communicate over a binary
//! channel with drop-outs and insertions was to decode a
//! convolutional code *directly* against the channel's event model
//! with a sequential decoder: explore the code tree best-first,
//! scoring each path by a Fano-style metric that marginalizes over
//! deletion/insertion/transmission events and charges a rate bias per
//! received bit explained.
//!
//! The implementation is a classic stack algorithm over nodes
//! `(coded-prefix length, encoder state, received position)`. It
//! works well at low event rates and degrades (runs out of its
//! expansion budget) as rates grow — which is precisely the
//! qualitative behaviour that pushed the field to watermark codes,
//! and the comparison experiment E9's commentary cites.

use crate::conv::ConvCode;
use crate::error::CodingError;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Reusable search working memory for [`SequentialDecoder`]: the
/// best-first heap, the event-enumeration stack, the prefix-encode
/// buffer, and the prefix arena, all of which keep their capacity
/// across decodes.
///
/// Nodes do not own their data prefix: each hypothesized bit lives
/// once in `arena` as a `(parent, bit)` link, and a node carries only
/// the `u32` index of its last link. Materializing a prefix walks the
/// parent chain into `prefix` — O(len), the same cost the per-node
/// `Vec` clone used to pay, but with zero steady-state allocations
/// (DESIGN §14 census) instead of one clone per successor node.
#[derive(Debug, Clone, Default)]
pub struct SequentialScratch {
    heap: BinaryHeap<Node>,
    stack: Vec<(usize, usize, f64)>,
    coded: Vec<bool>,
    /// Prefix-tree links `(parent index, appended bit)`; cleared per
    /// decode, capacity kept.
    arena: Vec<(u32, bool)>,
    /// Materialization buffer for the node currently being expanded.
    prefix: Vec<bool>,
}

/// Sentinel arena index for the empty prefix.
const ROOT: u32 = u32::MAX;

/// Rebuilds the data prefix ending at arena link `tail` (length
/// `len`) into `out`, walking the parent chain backwards.
// nsc-lint: hot
fn materialize(arena: &[(u32, bool)], mut tail: u32, len: u32, out: &mut Vec<bool>) {
    out.clear();
    out.resize(len as usize, false);
    for slot in out.iter_mut().rev() {
        let (parent, bit) = arena[tail as usize];
        *slot = bit;
        tail = parent;
    }
}

impl SequentialScratch {
    /// Creates an empty scratch; buffers grow lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Configuration of the sequential decoder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SequentialConfig {
    /// Deletion probability per coded bit.
    pub p_d: f64,
    /// Insertion probability per channel use.
    pub p_i: f64,
    /// Substitution probability per transmitted bit.
    pub p_s: f64,
    /// Maximum node expansions before declaring failure.
    pub max_expansions: usize,
}

impl Default for SequentialConfig {
    fn default() -> Self {
        SequentialConfig {
            p_d: 0.0,
            p_i: 0.0,
            p_s: 0.0,
            max_expansions: 200_000,
        }
    }
}

/// A sequential decoder for a rate-1/v convolutional code over the
/// binary deletion-insertion channel.
///
/// # Example
///
/// ```
/// use nsc_coding::conv::ConvCode;
/// use nsc_coding::sequential::{SequentialConfig, SequentialDecoder};
///
/// let code = ConvCode::standard_half_rate();
/// let decoder = SequentialDecoder::new(code.clone(), SequentialConfig::default())?;
/// let data = vec![true, false, true, true];
/// let sent = code.encode(&data);
/// assert_eq!(decoder.decode(&sent, data.len())?, data);
/// # Ok::<(), nsc_coding::CodingError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SequentialDecoder {
    code: ConvCode,
    config: SequentialConfig,
}

/// A search node: how much of the coded stream has been *sent*
/// (hypothetically), the encoder's data prefix (as an arena link),
/// and how much of the received stream is explained.
///
/// Ordering uses `metric` alone, so replacing the owned prefix `Vec`
/// with an arena index cannot change which node the heap pops next:
/// the search trajectory — and therefore the decoded output — is
/// bit-identical to the cloning implementation it replaced.
#[derive(Debug, Clone, Copy)]
struct Node {
    /// Fano metric (higher is better).
    metric: f64,
    /// Arena index of the prefix's last `(parent, bit)` link;
    /// [`ROOT`] for the empty prefix.
    tail: u32,
    /// Prefix length (tail bits included), cached so finished paths
    /// are recognized without walking the chain.
    len: u32,
    /// Received bits consumed so far.
    consumed: usize,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.metric == other.metric
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        self.metric
            .partial_cmp(&other.metric)
            .unwrap_or(Ordering::Equal)
    }
}

impl SequentialDecoder {
    /// Creates a decoder for the given code and channel model.
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::BadParameter`] when a probability is
    /// invalid, `p_d + p_i >= 1`, or the expansion budget is zero.
    pub fn new(code: ConvCode, config: SequentialConfig) -> Result<Self, CodingError> {
        for (name, v) in [
            ("p_d", config.p_d),
            ("p_i", config.p_i),
            ("p_s", config.p_s),
        ] {
            if !v.is_finite() || !(0.0..=1.0).contains(&v) {
                return Err(CodingError::BadParameter(format!(
                    "{name} = {v} is not a probability"
                )));
            }
        }
        if config.p_d + config.p_i >= 1.0 {
            return Err(CodingError::BadParameter(
                "p_d + p_i leaves no transmission probability".to_owned(),
            ));
        }
        if config.max_expansions == 0 {
            return Err(CodingError::BadParameter(
                "expansion budget must be positive".to_owned(),
            ));
        }
        Ok(SequentialDecoder { code, config })
    }

    /// The channel/search configuration.
    pub fn config(&self) -> SequentialConfig {
        self.config
    }

    /// Per-coded-bit path-metric increments: extending a path by one
    /// coded bit `t` against (a possibly empty window of) received
    /// bits. Returns `(delta_consumed, metric_delta)` options.
    ///
    /// Event model per coded bit, matching Definition 1: a geometric
    /// number of insertions (each emitting a random bit), then either
    /// deletion or transmission (with substitution `p_s`). To keep
    /// branching finite we expand *one event at a time*: an insertion
    /// consumes a received bit without advancing the coded stream and
    /// is handled as a self-loop option during expansion.
    fn metric_transmit(&self, coded_bit: bool, received_bit: bool) -> f64 {
        let p_t = 1.0 - self.config.p_d - self.config.p_i;
        let p_match = if coded_bit == received_bit {
            1.0 - self.config.p_s
        } else {
            self.config.p_s
        };
        // Fano normalization: each received bit has prior 1/2; the
        // rate bias keeps wrong paths sinking.
        ((p_t * p_match).max(1e-12) / 0.5).log2() - self.rate_bias()
    }

    fn metric_delete(&self) -> f64 {
        // Deletion explains no received bit: only the event
        // probability enters.
        (self.config.p_d.max(1e-12)).log2()
    }

    fn metric_insert(&self) -> f64 {
        // Insertion explains one received bit as pure noise.
        ((self.config.p_i * 0.5).max(1e-12) / 0.5).log2() - self.rate_bias()
    }

    fn rate_bias(&self) -> f64 {
        1.0 / self.code.outputs_per_input() as f64
    }

    /// Decodes `received` into `k` data bits.
    ///
    /// # Errors
    ///
    /// * [`CodingError::BadLength`] — `k` is zero.
    /// * [`CodingError::DecodeFailure`] — the expansion budget was
    ///   exhausted before a full-length path explained the received
    ///   stream (typical at high event rates — the behaviour that
    ///   motivated watermark codes).
    pub fn decode(&self, received: &[bool], k: usize) -> Result<Vec<bool>, CodingError> {
        let mut scratch = SequentialScratch::new();
        let mut out = Vec::new();
        self.decode_into(received, k, &mut scratch, &mut out)?;
        Ok(out)
    }

    /// [`Self::decode`] into caller-owned working memory; the decoded
    /// data bits replace the contents of `out`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::decode`].
    // nsc-lint: hot
    pub fn decode_into(
        &self,
        received: &[bool],
        k: usize,
        scratch: &mut SequentialScratch,
        out: &mut Vec<bool>,
    ) -> Result<(), CodingError> {
        if k == 0 {
            return Err(CodingError::BadLength {
                got: 0,
                need: "a positive data length".to_owned(),
            });
        }
        let total_inputs = k + self.code.tail_bits();
        let v = self.code.outputs_per_input();
        scratch.heap.clear();
        scratch.arena.clear();
        scratch.heap.push(Node {
            metric: 0.0,
            tail: ROOT,
            len: 0,
            consumed: 0,
        });
        let mut expansions = 0usize;
        while let Some(node) = scratch.heap.pop() {
            if node.len as usize == total_inputs {
                if node.consumed == received.len() {
                    materialize(&scratch.arena, node.tail, node.len, &mut scratch.prefix);
                    out.clear();
                    out.extend_from_slice(&scratch.prefix[..k]);
                    return Ok(());
                }
                // A finished path that has not explained the whole
                // stream can still absorb trailing bits as insertions
                // (possible when the final coded bit was deleted).
                let mut n = node;
                n.metric += self.metric_insert();
                n.consumed += 1;
                if n.consumed <= received.len() {
                    scratch.heap.push(n);
                }
                continue;
            }
            expansions += 1;
            if expansions > self.config.max_expansions {
                // nsc-lint: allow(hot-alloc, reason = "cold failure path: budget exhaustion ends the decode, nothing hot runs after it")
                return Err(CodingError::DecodeFailure(format!(
                    "sequential decoder exhausted {} expansions",
                    self.config.max_expansions
                )));
            }
            // The tail is known to be zeros; data bits branch.
            let choices: &[bool] = if (node.len as usize) < k {
                &[false, true]
            } else {
                &[false]
            };
            // Materialize the parent prefix once per expansion; each
            // choice appends its bit and pops it back off, so no
            // per-successor copies are made.
            materialize(&scratch.arena, node.tail, node.len, &mut scratch.prefix);
            for &b in choices {
                // Hard check, not a debug_assert: in release mode a
                // wrapped cast would silently corrupt parent links.
                // `ROOT` (u32::MAX) is reserved as the sentinel.
                if scratch.arena.len() >= ROOT as usize {
                    return Err(CodingError::DecodeFailure(
                        "sequential decoder arena exhausted the u32 index space".to_owned(),
                    ));
                }
                let child = scratch.arena.len() as u32;
                scratch.arena.push((node.tail, b));
                scratch.prefix.push(b);
                // Coded bits for this input, from a fresh encode of
                // the prefix (the encoder is cheap; prefix encoding
                // keeps Node small).
                self.code.encode_prefix_into(&scratch.prefix, &mut scratch.coded);
                let dlen = scratch.prefix.len();
                let new_bits = &scratch.coded[(dlen - 1) * v..dlen * v];
                // For each coded bit: deletion or transmission, with
                // optional insertions interleaved. Enumerate event
                // strings with at most one insertion before each
                // coded bit (the stack revisits for more).
                self.expand_events(
                    &mut scratch.heap,
                    &mut scratch.stack,
                    node.metric,
                    child,
                    dlen as u32,
                    node.consumed,
                    new_bits,
                    received,
                );
                scratch.prefix.pop();
            }
        }
        Err(CodingError::DecodeFailure(
            "search space exhausted without a consistent path".to_owned(),
        ))
    }

    /// Pushes successor nodes covering all event strings for the
    /// freshly emitted coded bits: per coded bit, `0..=max_ins`
    /// insertions then deletion-or-transmission. Every successor
    /// shares the `(tail, len)` arena prefix — nodes are `Copy`, so
    /// this pushes plain values, never clones.
    // nsc-lint: hot
    #[allow(clippy::too_many_arguments)]
    fn expand_events(
        &self,
        heap: &mut BinaryHeap<Node>,
        stack: &mut Vec<(usize, usize, f64)>,
        base_metric: f64,
        tail: u32,
        len: u32,
        base_consumed: usize,
        coded_bits: &[bool],
        received: &[bool],
    ) {
        // Depth-first enumeration over the v coded bits with a small
        // insertion cap per bit; v is 2 or 3 in practice so the
        // fan-out stays modest.
        let max_ins = if self.config.p_i > 0.0 { 2 } else { 0 };
        stack.clear();
        stack.push((0, base_consumed, base_metric));
        while let Some((bit_idx, consumed, metric)) = stack.pop() {
            if bit_idx == coded_bits.len() {
                heap.push(Node {
                    metric,
                    tail,
                    len,
                    consumed,
                });
                continue;
            }
            let t = coded_bits[bit_idx];
            for ins in 0..=max_ins {
                if consumed + ins > received.len() {
                    break;
                }
                let ins_metric = ins as f64 * self.metric_insert();
                // Deletion of this coded bit.
                stack.push((
                    bit_idx + 1,
                    consumed + ins,
                    metric + ins_metric + self.metric_delete(),
                ));
                // Transmission of this coded bit.
                if consumed + ins < received.len() {
                    let m = self.metric_transmit(t, received[consumed + ins]);
                    stack.push((bit_idx + 1, consumed + ins + 1, metric + ins_metric + m));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::{bit_error_rate, random_bits};
    use nsc_channel::alphabet::{Alphabet, Symbol};
    use nsc_channel::di::{DeletionInsertionChannel, DiParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn through_channel(bits: &[bool], p_d: f64, p_i: f64, seed: u64) -> Vec<bool> {
        let ch = DeletionInsertionChannel::new(
            Alphabet::binary(),
            DiParams::new(p_d, p_i, 0.0).unwrap(),
        );
        let input: Vec<Symbol> = bits.iter().map(|&b| Symbol::from_index(b as u32)).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        ch.transmit(&input, &mut rng)
            .received
            .iter()
            .map(|s| s.index() == 1)
            .collect()
    }

    #[test]
    fn construction_validation() {
        let code = ConvCode::standard_half_rate();
        let bad = SequentialConfig {
            p_d: 0.6,
            p_i: 0.5,
            ..Default::default()
        };
        assert!(SequentialDecoder::new(code.clone(), bad).is_err());
        let bad2 = SequentialConfig {
            p_d: -0.1,
            ..Default::default()
        };
        assert!(SequentialDecoder::new(code.clone(), bad2).is_err());
        let bad3 = SequentialConfig {
            max_expansions: 0,
            ..Default::default()
        };
        assert!(SequentialDecoder::new(code, bad3).is_err());
    }

    #[test]
    fn noiseless_round_trip() {
        let code = ConvCode::standard_half_rate();
        let decoder = SequentialDecoder::new(code.clone(), SequentialConfig::default()).unwrap();
        for len in [1usize, 8, 40] {
            let data = random_bits(len, &mut StdRng::seed_from_u64(len as u64));
            let sent = code.encode(&data);
            assert_eq!(decoder.decode(&sent, len).unwrap(), data, "len {len}");
        }
        assert!(decoder.decode(&[true, false], 0).is_err());
    }

    #[test]
    fn decodes_through_light_deletions() {
        let code = ConvCode::standard_half_rate();
        let p_d = 0.03;
        let decoder = SequentialDecoder::new(
            code.clone(),
            SequentialConfig {
                p_d,
                ..Default::default()
            },
        )
        .unwrap();
        let mut total = 0.0;
        let trials = 5;
        for t in 0..trials {
            let data = random_bits(60, &mut StdRng::seed_from_u64(t));
            let sent = code.encode(&data);
            let recv = through_channel(&sent, p_d, 0.0, 100 + t);
            match decoder.decode(&recv, 60) {
                Ok(decoded) => total += bit_error_rate(&decoded, &data),
                Err(_) => total += 0.5,
            }
        }
        let ber = total / trials as f64;
        assert!(ber < 0.05, "ber = {ber}");
    }

    #[test]
    fn decodes_through_light_insertions() {
        let code = ConvCode::standard_half_rate();
        let p_i = 0.03;
        let decoder = SequentialDecoder::new(
            code.clone(),
            SequentialConfig {
                p_i,
                ..Default::default()
            },
        )
        .unwrap();
        let data = random_bits(50, &mut StdRng::seed_from_u64(9));
        let sent = code.encode(&data);
        let recv = through_channel(&sent, 0.0, p_i, 10);
        let decoded = decoder.decode(&recv, 50).unwrap();
        let ber = bit_error_rate(&decoded, &data);
        assert!(ber < 0.05, "ber = {ber}");
    }

    #[test]
    fn heavy_noise_exhausts_the_budget() {
        // The behaviour that motivated watermark codes: at high event
        // rates sequential decoding blows up. A tiny budget makes the
        // failure observable quickly.
        let code = ConvCode::standard_half_rate();
        let decoder = SequentialDecoder::new(
            code.clone(),
            SequentialConfig {
                p_d: 0.25,
                p_i: 0.2,
                max_expansions: 2_000,
                ..Default::default()
            },
        )
        .unwrap();
        let data = random_bits(120, &mut StdRng::seed_from_u64(11));
        let sent = code.encode(&data);
        let recv = through_channel(&sent, 0.25, 0.2, 12);
        let result = decoder.decode(&recv, 120);
        // Either an explicit failure or (rarely) a noisy success; it
        // must not panic. Failure is the expected outcome.
        if let Ok(decoded) = result {
            assert_eq!(decoded.len(), 120);
        }
    }

    #[test]
    fn expansion_budget_bounds_work() {
        let code = ConvCode::standard_half_rate();
        let decoder = SequentialDecoder::new(
            code.clone(),
            SequentialConfig {
                p_d: 0.1,
                max_expansions: 3,
                ..Default::default()
            },
        )
        .unwrap();
        let data = random_bits(100, &mut StdRng::seed_from_u64(13));
        let sent = code.encode(&data);
        let recv = through_channel(&sent, 0.1, 0.0, 14);
        assert!(matches!(
            decoder.decode(&recv, 100),
            Err(CodingError::DecodeFailure(_))
        ));
    }
}
