//! Bit-vector helpers shared by the codecs.

use rand::Rng;

/// Draws `n` uniformly random bits.
pub fn random_bits<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Vec<bool> {
    (0..n).map(|_| rng.gen::<bool>()).collect()
}

/// Draws `n` uniformly random bits into a reused buffer (cleared
/// first). Draw-for-draw identical to [`random_bits`].
pub fn random_bits_into<R: Rng + ?Sized>(n: usize, rng: &mut R, out: &mut Vec<bool>) {
    out.clear();
    out.extend((0..n).map(|_| rng.gen::<bool>()));
}

/// Bit error rate between two equal-length bit strings.
///
/// # Panics
///
/// Panics when the lengths differ — comparing misaligned strings is a
/// caller bug.
pub fn bit_error_rate(a: &[bool], b: &[bool]) -> f64 {
    assert_eq!(a.len(), b.len(), "BER needs equal lengths");
    if a.is_empty() {
        return 0.0;
    }
    let errors = a.iter().zip(b).filter(|(x, y)| x != y).count();
    errors as f64 / a.len() as f64
}

/// XOR of two equal-length bit strings.
///
/// # Panics
///
/// Panics when the lengths differ.
pub fn xor(a: &[bool], b: &[bool]) -> Vec<bool> {
    assert_eq!(a.len(), b.len(), "xor needs equal lengths");
    a.iter().zip(b).map(|(x, y)| x ^ y).collect()
}

/// Converts bytes to bits, LSB first within each byte.
pub fn bytes_to_bits(bytes: &[u8]) -> Vec<bool> {
    bytes
        .iter()
        .flat_map(|&byte| (0..8).map(move |i| (byte >> i) & 1 == 1))
        .collect()
}

/// Converts bits (LSB first per byte) back to bytes; the final
/// partial byte, if any, is zero-padded.
pub fn bits_to_bytes(bits: &[bool]) -> Vec<u8> {
    bits.chunks(8)
        .map(|chunk| {
            chunk
                .iter()
                .enumerate()
                .fold(0u8, |acc, (i, &b)| acc | ((b as u8) << i))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_bits_are_balanced() {
        let mut rng = StdRng::seed_from_u64(0);
        let bits = random_bits(100_000, &mut rng);
        let ones = bits.iter().filter(|&&b| b).count();
        assert!((ones as f64 / 100_000.0 - 0.5).abs() < 0.01);
    }

    #[test]
    fn ber_counts_mismatches() {
        let a = vec![true, false, true, false];
        let b = vec![true, true, true, true];
        assert_eq!(bit_error_rate(&a, &b), 0.5);
        assert_eq!(bit_error_rate(&a, &a), 0.0);
        assert_eq!(bit_error_rate(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn ber_panics_on_mismatch() {
        let _ = bit_error_rate(&[true], &[true, false]);
    }

    #[test]
    fn xor_involution() {
        let a = vec![true, false, true];
        let b = vec![false, false, true];
        assert_eq!(xor(&xor(&a, &b), &b), a);
    }

    #[test]
    fn byte_round_trip() {
        let data = b"covert channel".to_vec();
        let bits = bytes_to_bits(&data);
        assert_eq!(bits.len(), data.len() * 8);
        assert_eq!(bits_to_bytes(&bits), data);
    }

    #[test]
    fn partial_byte_is_padded() {
        let bits = vec![true, true, false];
        assert_eq!(bits_to_bytes(&bits), vec![0b011]);
    }
}
