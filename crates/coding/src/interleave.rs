//! Block interleaving.
//!
//! Bursty channels (the Gilbert–Elliott model of
//! `nsc_channel::burst`) concentrate deletions; a block interleaver
//! spreads a burst of *substitution* errors across many codewords.
//! Note the honest caveat, verified in tests: interleaving helps
//! codes whose failure mode is substitution bursts (the outer code
//! after lattice synchronization), but does nothing for raw deletion
//! bursts — position loss commutes with permutation only after
//! alignment is restored.

use crate::error::CodingError;
use serde::{Deserialize, Serialize};

/// A rows × cols block interleaver: written row-major, read
/// column-major.
///
/// # Example
///
/// ```
/// use nsc_coding::interleave::BlockInterleaver;
///
/// let il = BlockInterleaver::new(2, 3)?;
/// let x = vec![true, false, true, false, true, false];
/// let y = il.interleave(&x)?;
/// assert_eq!(il.deinterleave(&y)?, x);
/// # Ok::<(), nsc_coding::CodingError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockInterleaver {
    rows: usize,
    cols: usize,
}

impl BlockInterleaver {
    /// Creates an interleaver over `rows × cols` blocks.
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::BadParameter`] when either dimension is
    /// zero.
    pub fn new(rows: usize, cols: usize) -> Result<Self, CodingError> {
        if rows == 0 || cols == 0 {
            return Err(CodingError::BadParameter(
                "interleaver dimensions must be positive".to_owned(),
            ));
        }
        Ok(BlockInterleaver { rows, cols })
    }

    /// Block size `rows × cols`.
    pub fn block_size(&self) -> usize {
        self.rows * self.cols
    }

    /// Interleaves a whole number of blocks.
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::BadLength`] when the input is not a
    /// positive multiple of [`Self::block_size`].
    pub fn interleave<T: Copy>(&self, data: &[T]) -> Result<Vec<T>, CodingError> {
        let bs = self.block_size();
        if data.is_empty() || !data.len().is_multiple_of(bs) {
            return Err(CodingError::BadLength {
                got: data.len(),
                need: format!("a positive multiple of {bs}"),
            });
        }
        let mut out = Vec::with_capacity(data.len());
        for block in data.chunks(bs) {
            for c in 0..self.cols {
                for r in 0..self.rows {
                    out.push(block[r * self.cols + c]);
                }
            }
        }
        Ok(out)
    }

    /// Inverts [`Self::interleave`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::interleave`].
    pub fn deinterleave<T: Copy>(&self, data: &[T]) -> Result<Vec<T>, CodingError> {
        // Deinterleaving a rows×cols column-major read is
        // interleaving with the transposed geometry.
        BlockInterleaver {
            rows: self.cols,
            cols: self.rows,
        }
        .interleave(data)
    }

    /// Longest contiguous burst in the *interleaved* stream that is
    /// guaranteed to hit every row (codeword) at most once after
    /// deinterleaving: equal to `rows`, since consecutive interleaved
    /// symbols cycle through the rows.
    pub fn burst_tolerance(&self) -> usize {
        self.rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn construction_validation() {
        assert!(BlockInterleaver::new(0, 3).is_err());
        assert!(BlockInterleaver::new(3, 0).is_err());
        assert!(BlockInterleaver::new(1, 1).is_ok());
    }

    #[test]
    fn known_small_permutation() {
        let il = BlockInterleaver::new(2, 3).unwrap();
        let x: Vec<u8> = vec![0, 1, 2, 3, 4, 5];
        // Rows: [0 1 2] / [3 4 5]; column-major read: 0 3 1 4 2 5.
        assert_eq!(il.interleave(&x).unwrap(), vec![0, 3, 1, 4, 2, 5]);
    }

    #[test]
    fn round_trip_random() {
        let mut rng = StdRng::seed_from_u64(0);
        for (r, c) in [(1usize, 1usize), (4, 4), (3, 7), (8, 2)] {
            let il = BlockInterleaver::new(r, c).unwrap();
            let n = il.block_size() * 3;
            let x: Vec<bool> = (0..n).map(|_| rng.gen()).collect();
            let y = il.interleave(&x).unwrap();
            assert_eq!(il.deinterleave(&y).unwrap(), x);
            // Interleaving is a permutation: same multiset.
            let ones_x = x.iter().filter(|&&b| b).count();
            let ones_y = y.iter().filter(|&&b| b).count();
            assert_eq!(ones_x, ones_y);
        }
    }

    #[test]
    fn length_validation() {
        let il = BlockInterleaver::new(2, 3).unwrap();
        assert!(il.interleave(&[true; 5]).is_err());
        assert!(il.interleave::<bool>(&[]).is_err());
        assert!(il.deinterleave(&[true; 7]).is_err());
    }

    #[test]
    fn burst_is_spread_across_rows() {
        // A contiguous burst of `rows` errors in the interleaved
        // domain touches each row exactly once after deinterleaving.
        let il = BlockInterleaver::new(4, 8).unwrap();
        assert_eq!(il.burst_tolerance(), 4);
        let n = il.block_size();
        let clean = vec![false; n];
        let mut dirty = il.interleave(&clean).unwrap();
        for slot in dirty.iter_mut().take(il.burst_tolerance()) {
            *slot = true;
        }
        let restored = il.deinterleave(&dirty).unwrap();
        for row in 0..4 {
            let row_errors = (0..8).filter(|c| restored[row * 8 + c]).count();
            assert_eq!(row_errors, 1, "row {row} has {row_errors} errors");
        }
        // A burst twice as long hits each row at most twice.
        let mut dirty2 = il.interleave(&clean).unwrap();
        for slot in dirty2.iter_mut().take(2 * il.burst_tolerance()) {
            *slot = true;
        }
        let restored2 = il.deinterleave(&dirty2).unwrap();
        for row in 0..4 {
            let row_errors = (0..8).filter(|c| restored2[row * 8 + c]).count();
            assert!(row_errors <= 2);
        }
    }
}
