//! Engine-scale coded campaigns: encode → deletion-insertion channel
//! → scratch-reused decode, under the trial engine's determinism
//! contract.
//!
//! This is the end-to-end coded pipeline (ROADMAP item 5): each trial
//! draws a random data frame, encodes it with a [`Codec`], transmits
//! the coded bits through [`DeletionInsertionChannel`], decodes the
//! received stream, and records bit-error/frame-success statistics.
//! Trials run on [`fold_trials_scoped_timed`] with one
//! [`CodecScratch`] per worker, so after warm-up the decode hot path
//! performs no heap allocation (see DESIGN §13) and — because batch
//! boundaries and the merge order are fixed — the summary is
//! **bit-identical at any thread count**.
//!
//! Decode failures (a sequential decoder exhausting its expansion
//! budget, a drift lattice with no consistent path) are measured
//! behaviour, not errors: the frame counts as a total loss (decoded
//! as all-zero) and the failure is tallied in
//! [`CodedSummary::decode_failures`].

use crate::bits::{bit_error_rate, random_bits_into};
use crate::error::CodingError;
use crate::rate::{decode_received, prepare_sequential, Codec, CodecScratch};
use nsc_channel::alphabet::{Alphabet, Symbol};
use nsc_channel::di::{DeletionInsertionChannel, DiParams};
use nsc_core::engine::{
    fold_trials_scoped_timed, EngineConfig, RunManifest, RunningStats, StatSummary,
    TrialAccumulator,
};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// Which decode entry points a campaign exercises.
///
/// The backend is an *execution strategy*, not a model parameter:
/// both must produce bit-identical summaries for the same plan and
/// engine config (the allocating APIs are thin wrappers over the
/// scratch ones), so it is reported only in observational output
/// (`manifest.execution`), never in determinism-checked payloads.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "lowercase")]
pub enum DecoderBackend {
    /// Per-worker [`CodecScratch`] reused across trials — the
    /// allocation-free hot path.
    #[default]
    Scratch,
    /// A fresh scratch per trial, i.e. the behaviour of the
    /// allocating `decode` wrappers. Exists so the equivalence
    /// harness can diff the two.
    Allocating,
}

impl DecoderBackend {
    /// Stable machine-readable name, used by the CLI and in JSON.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            DecoderBackend::Scratch => "scratch",
            DecoderBackend::Allocating => "allocating",
        }
    }

    /// Parses a CLI flag value.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "scratch" => Some(DecoderBackend::Scratch),
            "allocating" => Some(DecoderBackend::Allocating),
            _ => None,
        }
    }
}

impl std::fmt::Display for DecoderBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The per-trial plan of a coded campaign: frame size and channel
/// parameters. The codec rides alongside (it is not serializable
/// itself).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CodedPlan {
    /// Data bits per frame.
    pub data_bits: usize,
    /// Deletion probability per coded bit.
    pub p_d: f64,
    /// Insertion probability per channel use.
    pub p_i: f64,
    /// Substitution probability per transmitted bit.
    pub p_s: f64,
}

impl CodedPlan {
    /// Stable one-line descriptor for the [`RunManifest`]. The
    /// decoder backend is deliberately absent: the plan is part of
    /// the determinism-checked payload and both backends must
    /// produce identical results.
    #[must_use]
    pub fn describe(&self, codec: &Codec) -> String {
        format!(
            "coded codec={} data_bits={} p_d={} p_i={} p_s={}",
            codec.name(),
            self.data_bits,
            self.p_d,
            self.p_i,
            self.p_s
        )
    }
}

/// Aggregated result of a coded campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CodedSummary {
    /// Codec name ([`Codec::name`]).
    pub codec: String,
    /// Data bits per frame.
    pub data_bits: usize,
    /// Deletion probability per coded bit.
    pub p_d: f64,
    /// Insertion probability per channel use.
    pub p_i: f64,
    /// Substitution probability per transmitted bit.
    pub p_s: f64,
    /// Trials aggregated.
    pub trials: usize,
    /// Master seed the per-trial seeds were derived from.
    pub master_seed: u64,
    /// Nominal code rate (data bits per transmitted bit).
    pub nominal_rate: f64,
    /// Per-frame bit error rate.
    pub ber: StatSummary,
    /// Fraction of frames decoded without any bit error.
    pub frame_success: StatSummary,
    /// Effective reliable throughput: `nominal_rate × mean frame
    /// success` — the whole-frame goodput figure experiment E9 uses.
    pub effective_rate: f64,
    /// Frames on which the decoder reported failure (counted as
    /// total losses in the statistics above).
    pub decode_failures: u64,
}

/// What one trial contributes to the campaign statistics.
#[derive(Clone, Copy)]
struct CodedOutcome {
    ber: f64,
    frame_ok: f64,
    decode_failed: bool,
}

/// Per-batch partial: one [`RunningStats`] per statistic plus the
/// failure tally.
#[derive(Default)]
struct CodedAccumulator {
    ber: RunningStats,
    frame_ok: RunningStats,
    decode_failures: u64,
}

impl TrialAccumulator for CodedAccumulator {
    type Outcome = CodedOutcome;

    fn record(&mut self, o: CodedOutcome) {
        self.ber.push(o.ber);
        self.frame_ok.push(o.frame_ok);
        self.decode_failures += u64::from(o.decode_failed);
    }

    fn merge(&mut self, other: Self) {
        self.ber.merge(other.ber);
        self.frame_ok.merge(other.frame_ok);
        self.decode_failures += other.decode_failures;
    }
}

/// Per-worker working memory: the codec scratch plus the frame
/// buffers the trial loop cycles through.
#[derive(Default)]
struct CampaignScratch {
    codec: CodecScratch,
    data: Vec<bool>,
    symbols: Vec<Symbol>,
    received: Vec<bool>,
}

/// Runs `trials` independent coded frames under the engine and
/// aggregates BER / frame-success / goodput statistics, using the
/// scratch-reused decode path.
///
/// Determinism contract: the summary and the manifest's
/// reproducibility fields are a pure function of
/// `(codec, plan, trials, config.master_seed, config.batch_size)` —
/// the thread count and decoder backend never change a bit of them.
///
/// # Errors
///
/// Returns [`CodingError::BadParameter`] when `trials` or
/// `plan.data_bits` is zero or a channel probability is invalid,
/// [`CodingError::BadLength`] when `plan.data_bits` does not match an
/// LDPC codec's frame size, and [`CodingError::Engine`] when the
/// worker pool failed to deliver a batch.
pub fn run_coded_campaign(
    config: &EngineConfig,
    codec: &Codec,
    plan: &CodedPlan,
    trials: usize,
) -> Result<(CodedSummary, RunManifest), CodingError> {
    run_coded_campaign_with(config, codec, plan, trials, DecoderBackend::Scratch)
}

/// [`run_coded_campaign`] with an explicit [`DecoderBackend`] — the
/// equivalence harness's entry point. Both backends must produce
/// bit-identical summaries.
///
/// # Errors
///
/// Same contract as [`run_coded_campaign`].
pub fn run_coded_campaign_with(
    config: &EngineConfig,
    codec: &Codec,
    plan: &CodedPlan,
    trials: usize,
    backend: DecoderBackend,
) -> Result<(CodedSummary, RunManifest), CodingError> {
    if plan.data_bits == 0 || trials == 0 {
        return Err(CodingError::BadParameter(
            "data_bits and trials must be positive".to_owned(),
        ));
    }
    if let Codec::LdpcWatermark(c) = codec {
        if plan.data_bits != c.data_len() {
            return Err(CodingError::BadLength {
                got: plan.data_bits,
                need: format!("exactly {} (LDPC frame size)", c.data_len()),
            });
        }
    }
    let params = DiParams::new(plan.p_d, plan.p_i, plan.p_s)
        .map_err(|e| CodingError::BadParameter(e.to_string()))?;
    let channel = DeletionInsertionChannel::new(Alphabet::binary(), params);
    let seq_decoder = prepare_sequential(codec, plan.p_d, plan.p_i, plan.p_s)?;
    // The encoded frame length is a pure function of the codec and
    // `data_bits`, so one probe encode fixes the nominal rate.
    let probe = codec.encode(&vec![false; plan.data_bits])?;
    let nominal_rate = codec.nominal_rate(plan.data_bits, probe.len());

    let (acc, execution) = fold_trials_scoped_timed::<StdRng, CodedAccumulator, _, _, _>(
        config,
        trials,
        CampaignScratch::default,
        |scratch, _trial, rng| {
            random_bits_into(plan.data_bits, rng, &mut scratch.data);
            let sent = codec.encode(&scratch.data).expect("plan validated");
            scratch.symbols.clear();
            scratch
                .symbols
                .extend(sent.iter().map(|&b| Symbol::from_index(b as u32)));
            let transmission = channel.transmit(&scratch.symbols, rng);
            scratch.received.clear();
            scratch
                .received
                .extend(transmission.received.iter().map(|s| s.index() == 1));
            let decode = match backend {
                DecoderBackend::Scratch => decode_received(
                    codec,
                    seq_decoder.as_ref(),
                    &mut scratch.codec,
                    &scratch.received,
                    plan.data_bits,
                    plan.p_d,
                    plan.p_i,
                    plan.p_s,
                ),
                DecoderBackend::Allocating => {
                    let mut fresh = CodecScratch::new();
                    let r = decode_received(
                        codec,
                        seq_decoder.as_ref(),
                        &mut fresh,
                        &scratch.received,
                        plan.data_bits,
                        plan.p_d,
                        plan.p_i,
                        plan.p_s,
                    );
                    scratch.codec.decoded.clear();
                    scratch.codec.decoded.extend_from_slice(&fresh.decoded);
                    r
                }
            };
            let decode_failed = decode.is_err();
            if decode_failed {
                // A failed frame is a total loss: score it as an
                // all-zero decode, exactly like `evaluate_codec`.
                scratch.codec.decoded.clear();
                scratch.codec.decoded.resize(plan.data_bits, false);
            }
            let ber = bit_error_rate(&scratch.codec.decoded, &scratch.data);
            CodedOutcome {
                ber,
                frame_ok: if ber == 0.0 && !decode_failed { 1.0 } else { 0.0 },
                decode_failed,
            }
        },
    )
    .map_err(|e| CodingError::Engine(e.to_string()))?;

    let summary = CodedSummary {
        codec: codec.name().to_owned(),
        data_bits: plan.data_bits,
        p_d: plan.p_d,
        p_i: plan.p_i,
        p_s: plan.p_s,
        trials,
        master_seed: config.master_seed,
        nominal_rate,
        ber: acc.ber.into(),
        frame_success: acc.frame_ok.into(),
        effective_rate: nominal_rate * acc.frame_ok.mean(),
        decode_failures: acc.decode_failures,
    };
    let manifest =
        RunManifest::new(config, plan.describe(codec), Some(trials)).with_execution(execution);
    Ok((summary, manifest))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::ConvCode;
    use crate::marker::MarkerCode;
    use crate::repetition::RepetitionCode;
    use crate::watermark::WatermarkCode;
    use crate::watermark_ldpc::LdpcWatermarkCode;

    fn watermark() -> Codec {
        Codec::Watermark(WatermarkCode::new(ConvCode::standard_half_rate(), 3, 11).unwrap())
    }

    fn plan(p_d: f64, p_i: f64) -> CodedPlan {
        CodedPlan {
            data_bits: 48,
            p_d,
            p_i,
            p_s: 0.0,
        }
    }

    #[test]
    fn validation() {
        let cfg = EngineConfig::serial(1);
        let p = plan(0.05, 0.0);
        assert!(run_coded_campaign(&cfg, &watermark(), &CodedPlan { data_bits: 0, ..p }, 3).is_err());
        assert!(run_coded_campaign(&cfg, &watermark(), &p, 0).is_err());
        assert!(run_coded_campaign(&cfg, &watermark(), &CodedPlan { p_d: 1.5, ..p }, 3).is_err());
        let ldpc = Codec::LdpcWatermark(LdpcWatermarkCode::new(100, 100, 3, 3, 7).unwrap());
        assert!(matches!(
            run_coded_campaign(&cfg, &ldpc, &p, 3),
            Err(CodingError::BadLength { .. })
        ));
    }

    #[test]
    fn noiseless_channel_gives_perfect_frames() {
        let cfg = EngineConfig::serial(5);
        for codec in [
            watermark(),
            Codec::Marker(MarkerCode::default_params()),
            Codec::Repetition(RepetitionCode::new(3).unwrap()),
        ] {
            let (s, m) = run_coded_campaign(&cfg, &codec, &plan(0.0, 0.0), 4).unwrap();
            assert_eq!(s.frame_success.mean, 1.0, "{}", codec.name());
            assert_eq!(s.ber.mean, 0.0);
            assert_eq!(s.decode_failures, 0);
            assert!((s.effective_rate - s.nominal_rate).abs() < 1e-12);
            assert_eq!(m.trials, Some(4));
            assert!(m.execution.is_some());
        }
    }

    #[test]
    fn summary_is_thread_count_invariant() {
        let p = plan(0.05, 0.02);
        let codec = watermark();
        let base = run_coded_campaign(&EngineConfig::serial(42), &codec, &p, 7)
            .unwrap()
            .0;
        for threads in [2usize, 7] {
            let cfg = EngineConfig::seeded(42).with_threads(threads);
            let (s, _) = run_coded_campaign(&cfg, &codec, &p, 7).unwrap();
            assert_eq!(s, base, "threads = {threads}");
        }
    }

    #[test]
    fn backends_are_bit_identical() {
        let p = plan(0.06, 0.0);
        for codec in [watermark(), Codec::Marker(MarkerCode::default_params())] {
            let cfg = EngineConfig::seeded(9).with_threads(2);
            let scratch =
                run_coded_campaign_with(&cfg, &codec, &p, 6, DecoderBackend::Scratch).unwrap();
            let alloc =
                run_coded_campaign_with(&cfg, &codec, &p, 6, DecoderBackend::Allocating).unwrap();
            assert_eq!(scratch.0, alloc.0, "{}", codec.name());
            assert_eq!(
                scratch.1.deterministic(),
                alloc.1.deterministic(),
                "{}",
                codec.name()
            );
        }
    }

    #[test]
    fn sequential_budget_exhaustion_is_counted_not_fatal() {
        let codec = Codec::Sequential {
            code: ConvCode::standard_half_rate(),
            max_expansions: 3,
        };
        let (s, _) =
            run_coded_campaign(&EngineConfig::serial(3), &codec, &plan(0.1, 0.0), 3).unwrap();
        assert_eq!(s.decode_failures, 3);
        assert_eq!(s.frame_success.mean, 0.0);
    }

    #[test]
    fn backend_names_round_trip() {
        for b in [DecoderBackend::Scratch, DecoderBackend::Allocating] {
            assert_eq!(DecoderBackend::parse(b.name()), Some(b));
            assert_eq!(b.to_string(), b.name());
        }
        assert_eq!(DecoderBackend::parse("banded"), None);
    }
}
