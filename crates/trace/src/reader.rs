//! Validating, streaming JSONL reader for `nsc-trace/v1` streams.

use crate::error::TraceError;
use crate::format::{parse_canonical_event, RawEvent, TraceEvent, TraceHeader};
use std::fs::File;
use std::io::{BufRead, BufReader};
use std::path::Path;

/// A streaming trace reader.
///
/// Parses and validates the header eagerly (in [`TraceReader::new`]),
/// then yields one event per call to
/// [`read_event`](TraceReader::read_event) — or per iterator step —
/// holding only the current line in memory. Arbitrarily large traces
/// stream in constant space.
///
/// Validation is strict and every rejection carries a 1-based
/// line/column position: malformed JSON, unknown fields or event
/// kinds, symbols outside the declared alphabet, and decreasing tick
/// timestamps all fail with [`TraceError::Malformed`].
///
/// # Example
///
/// ```
/// use nsc_trace::TraceReader;
///
/// let text = "{\"schema\":\"nsc-trace/v1\",\"alphabet_bits\":1}\n\
///             {\"t\":0,\"ev\":\"send\",\"sym\":1}\n\
///             {\"t\":3,\"ev\":\"recv\",\"sym\":1}\n";
/// let mut r = TraceReader::new(text.as_bytes())?;
/// assert_eq!(r.header().alphabet_bits, 1);
/// let events: Vec<_> = r.by_ref().collect::<Result<_, _>>()?;
/// assert_eq!(events.len(), 2);
/// assert_eq!(r.events_read(), 2);
/// # Ok::<(), nsc_trace::TraceError>(())
/// ```
#[derive(Debug)]
pub struct TraceReader<R: BufRead> {
    source: R,
    header: TraceHeader,
    /// Line number of the last line consumed (header = 1).
    line: u64,
    last_tick: Option<u64>,
    events: u64,
    buf: String,
    done: bool,
}

impl TraceReader<BufReader<File>> {
    /// Opens a trace file and validates its header.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] when the file cannot be opened and
    /// the same conditions as [`TraceReader::new`] otherwise.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self, TraceError> {
        TraceReader::new(BufReader::new(File::open(path)?))
    }
}

impl<R: BufRead> TraceReader<R> {
    /// Reads and validates the header line from `source`.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Malformed`] positioned at line 1 when
    /// the stream is empty, the header is not valid JSON, it carries
    /// unknown fields, or it violates a header invariant (wrong
    /// schema, alphabet width outside `1..=16`, bad tick rate);
    /// [`TraceError::Io`] on read failure.
    pub fn new(mut source: R) -> Result<Self, TraceError> {
        let mut buf = String::new();
        if source.read_line(&mut buf)? == 0 {
            return Err(TraceError::malformed(
                1,
                "empty stream: expected an nsc-trace/v1 header",
            ));
        }
        let header: TraceHeader = serde_json::from_str(buf.trim_end_matches(['\n', '\r']))
            .map_err(|e| TraceError::json(1, &e))?;
        header
            .validate()
            .map_err(|msg| TraceError::malformed(1, msg))?;
        Ok(TraceReader {
            source,
            header,
            line: 1,
            last_tick: None,
            events: 0,
            buf,
            done: false,
        })
    }

    /// The validated header.
    #[must_use]
    pub fn header(&self) -> &TraceHeader {
        &self.header
    }

    /// Events successfully read so far.
    #[must_use]
    pub fn events_read(&self) -> u64 {
        self.events
    }

    /// Reads the next event, or `None` at end of stream.
    ///
    /// After an error the reader is poisoned: every further call
    /// returns `None` rather than resynchronising on corrupt input.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Malformed`] with the offending line and
    /// column for invalid JSON, blank lines, unknown fields or event
    /// kinds, symbols outside the declared alphabet, and decreasing
    /// ticks; [`TraceError::Io`] on read failure.
    pub fn read_event(&mut self) -> Result<Option<TraceEvent>, TraceError> {
        if self.done {
            return Ok(None);
        }
        match self.next_event() {
            Ok(Some(event)) => Ok(Some(event)),
            Ok(None) => {
                self.done = true;
                Ok(None)
            }
            Err(e) => {
                self.done = true;
                Err(e)
            }
        }
    }

    fn next_event(&mut self) -> Result<Option<TraceEvent>, TraceError> {
        self.buf.clear();
        if self.source.read_line(&mut self.buf)? == 0 {
            return Ok(None);
        }
        self.line += 1;
        let line = self.buf.trim_end_matches(['\n', '\r']);
        if line.trim().is_empty() {
            return Err(TraceError::malformed(
                self.line,
                "blank line inside the event stream",
            ));
        }
        // Fast path: the exact canonical line shape our own writer
        // produces parses without serde. Anything else — reordered
        // keys, whitespace, or an actual defect — falls back to the
        // strict serde path, so foreign-but-valid lines still parse
        // and errors keep their exact positions and messages.
        let event = match parse_canonical_event(line) {
            Some(event) => event,
            None => {
                let raw: RawEvent =
                    serde_json::from_str(line).map_err(|e| TraceError::json(self.line, &e))?;
                raw.into_event()
                    .map_err(|msg| TraceError::malformed(self.line, msg))?
            }
        };
        if let Some(sym) = event.kind.symbol() {
            if u64::from(sym) >= 1u64 << self.header.alphabet_bits {
                return Err(TraceError::malformed(
                    self.line,
                    format!(
                        "symbol {sym} outside the declared {}-bit alphabet",
                        self.header.alphabet_bits
                    ),
                ));
            }
        }
        if let Some(last) = self.last_tick {
            if event.tick < last {
                return Err(TraceError::malformed(
                    self.line,
                    format!("tick {} decreases (previous event at {last})", event.tick),
                ));
            }
        }
        self.last_tick = Some(event.tick);
        self.events += 1;
        Ok(Some(event))
    }
}

impl<R: BufRead> Iterator for TraceReader<R> {
    type Item = Result<TraceEvent, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.read_event().transpose()
    }
}

/// Reads an entire trace from `source` into memory: the header and
/// every event. Convenience for small traces and tests; streaming
/// consumers should drive [`TraceReader`] directly.
///
/// # Errors
///
/// Same conditions as [`TraceReader::new`] and
/// [`TraceReader::read_event`].
pub fn read_trace<R: BufRead>(source: R) -> Result<(TraceHeader, Vec<TraceEvent>), TraceError> {
    let mut reader = TraceReader::new(source)?;
    let mut events = Vec::new();
    while let Some(event) = reader.read_event()? {
        events.push(event);
    }
    Ok((reader.header, events))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{TraceEventKind, TRACE_SCHEMA};
    use crate::writer::write_trace;

    fn sample() -> String {
        let mut s = format!("{{\"schema\":\"{TRACE_SCHEMA}\",\"alphabet_bits\":2}}\n");
        s.push_str("{\"t\":0,\"ev\":\"send\",\"sym\":3}\n");
        s.push_str("{\"t\":0,\"ev\":\"del\",\"sym\":1}\n");
        s.push_str("{\"t\":2,\"ev\":\"ins\",\"sym\":3}\n");
        s.push_str("{\"t\":2,\"ev\":\"ack\"}\n");
        s
    }

    #[test]
    fn reads_valid_stream() {
        let (header, events) = read_trace(sample().as_bytes()).unwrap();
        assert_eq!(header.alphabet_bits, 2);
        assert_eq!(events.len(), 4);
        assert_eq!(events[0], TraceEvent::new(0, TraceEventKind::Send(3)));
        assert_eq!(events[3], TraceEvent::new(2, TraceEventKind::Ack));
    }

    #[test]
    fn missing_final_newline_is_fine() {
        let mut text = sample();
        text.pop();
        assert_eq!(read_trace(text.as_bytes()).unwrap().1.len(), 4);
    }

    #[test]
    fn rejects_bad_headers_with_line_1() {
        for (text, needle) in [
            ("", "empty stream"),
            (
                "{\"schema\":\"nsc-trace/v9\",\"alphabet_bits\":1}\n",
                "nsc-trace/v9",
            ),
            (
                "{\"schema\":\"nsc-trace/v1\",\"alphabet_bits\":77}\n",
                "alphabet_bits",
            ),
            ("{\"schema\":\"nsc-trace/v1\"}\n", "alphabet_bits"),
            ("not json\n", "expected"),
        ] {
            let err = TraceReader::new(text.as_bytes()).expect_err(text);
            let msg = err.to_string();
            assert!(msg.contains("line 1"), "{text:?}: {msg}");
            assert!(msg.contains(needle), "{text:?}: {msg}");
        }
    }

    #[test]
    fn rejects_bad_events_with_position() {
        // (appended line, expected needle); each case appends to the
        // 5-line sample, so the defect is on line 6.
        for (bad, needle) in [
            ("{\"t\":3,\"ev\":\"send\"", "line 6"), // truncated JSON
            ("{\"t\":3,\"ev\":\"send\",\"sym\":4}", "alphabet"), // symbol out of range
            ("{\"t\":1,\"ev\":\"ack\"}", "decreases"), // tick goes backwards
            ("{\"t\":3,\"ev\":\"warp\",\"sym\":0}", "warp"), // unknown kind
            ("   ", "blank"),                       // blank line
        ] {
            let text = format!("{}{bad}\n", sample());
            let mut reader = TraceReader::new(text.as_bytes()).unwrap();
            let mut err = None;
            for item in reader.by_ref() {
                if let Err(e) = item {
                    err = Some(e);
                }
            }
            let msg = err.expect(bad).to_string();
            assert!(msg.contains("line 6"), "{bad:?}: {msg}");
            assert!(msg.contains(needle), "{bad:?}: {msg}");
            // Poisoned after the error: no resynchronisation.
            assert!(reader.read_event().unwrap().is_none());
        }
    }

    #[test]
    fn non_canonical_but_valid_lines_still_parse_via_fallback() {
        // Reordered keys and whitespace skip the fast path but are
        // legal JSON for the strict wire shape — the serde fallback
        // must accept them exactly as before.
        let text = format!(
            "{{\"schema\":\"{TRACE_SCHEMA}\",\"alphabet_bits\":2}}\n\
             {{\"ev\":\"send\",\"t\":0,\"sym\":1}}\n\
             {{\"t\": 1, \"ev\": \"recv\", \"sym\": 1}}\n\
             {{\"sym\":2,\"ev\":\"ins\",\"t\":4}}\n"
        );
        let (_, events) = read_trace(text.as_bytes()).unwrap();
        assert_eq!(
            events,
            vec![
                TraceEvent::new(0, TraceEventKind::Send(1)),
                TraceEvent::new(1, TraceEventKind::Recv(1)),
                TraceEvent::new(4, TraceEventKind::Insert(2)),
            ]
        );
    }

    #[test]
    fn writer_reader_round_trip() {
        let events = vec![
            TraceEvent::new(0, TraceEventKind::Send(2)),
            TraceEvent::new(1, TraceEventKind::Recv(2)),
            TraceEvent::new(9, TraceEventKind::Insert(0)),
        ];
        let header =
            crate::format::TraceHeader::new(2).with_manifest(serde_json::json!({"k": [1, 2]}));
        let mut out = Vec::new();
        write_trace(&mut out, &header, events.clone()).unwrap();
        let (back_header, back_events) = read_trace(out.as_slice()).unwrap();
        assert_eq!(back_header, header);
        assert_eq!(back_events, events);
    }
}
