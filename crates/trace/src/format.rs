//! The `nsc-trace/v1` on-disk schema.
//!
//! A trace is a JSON-Lines stream: line 1 is a [`TraceHeader`], every
//! following line one [`TraceEvent`]. The format is **strict**:
//! unknown fields, unknown event kinds, out-of-range symbols, and
//! decreasing tick timestamps are all errors, never silently ignored.
//! Any extension — a new field, a new event kind — requires bumping
//! the `schema` string to `nsc-trace/v2`, so a v1 reader can never
//! misinterpret a v2 file.
//!
//! Wire form:
//!
//! ```json
//! {"schema":"nsc-trace/v1","alphabet_bits":3,"tick_rate_hz":1000.0,"manifest":{...}}
//! {"t":0,"ev":"send","sym":5}
//! {"t":1,"ev":"recv","sym":5}
//! {"t":4,"ev":"del","sym":2}
//! {"t":7,"ev":"ins","sym":2}
//! {"t":7,"ev":"ack"}
//! ```

use serde::de::Error as _;
use serde::{Deserialize, Deserializer, Serialize, Serializer};

/// The schema identifier this crate reads and writes.
pub const TRACE_SCHEMA: &str = "nsc-trace/v1";

/// Widest symbol alphabet a trace may declare, matching
/// [`nsc_channel::alphabet::Alphabet`]'s 16-bit ceiling.
pub const MAX_ALPHABET_BITS: u32 = 16;

/// Line 1 of every trace: what was captured and how to interpret it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct TraceHeader {
    /// Schema identifier; must equal [`TRACE_SCHEMA`].
    pub schema: String,
    /// Symbol width in bits (`1..=16`); every event symbol must be
    /// `< 2^alphabet_bits`.
    pub alphabet_bits: u32,
    /// Physical duration of one tick, when known (simulated traces
    /// usually omit it).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub tick_rate_hz: Option<f64>,
    /// Provenance of the capture — for engine campaigns this is the
    /// serialized [`nsc_core::engine::RunManifest`]; arbitrary JSON is
    /// allowed so foreign capture tools can attach their own records.
    #[serde(default, skip_serializing_if = "serde_json::Value::is_null")]
    pub manifest: serde_json::Value,
}

impl TraceHeader {
    /// A header for a `bits`-wide capture with no manifest.
    #[must_use]
    pub fn new(bits: u32) -> Self {
        TraceHeader {
            schema: TRACE_SCHEMA.to_owned(),
            alphabet_bits: bits,
            tick_rate_hz: None,
            manifest: serde_json::Value::Null,
        }
    }

    /// Returns a copy carrying the given provenance manifest.
    #[must_use]
    pub fn with_manifest(mut self, manifest: serde_json::Value) -> Self {
        self.manifest = manifest;
        self
    }

    /// Returns a copy declaring the physical tick rate.
    #[must_use]
    pub fn with_tick_rate(mut self, hz: f64) -> Self {
        self.tick_rate_hz = Some(hz);
        self
    }

    /// Checks the header's invariants, returning what is wrong.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant: wrong
    /// schema string, alphabet width outside `1..=16`, or a
    /// non-positive/non-finite tick rate.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema != TRACE_SCHEMA {
            return Err(format!(
                "unsupported schema {:?} (this reader speaks {TRACE_SCHEMA:?})",
                self.schema
            ));
        }
        if self.alphabet_bits == 0 || self.alphabet_bits > MAX_ALPHABET_BITS {
            return Err(format!(
                "alphabet_bits = {} outside supported range 1..={MAX_ALPHABET_BITS}",
                self.alphabet_bits
            ));
        }
        if let Some(hz) = self.tick_rate_hz {
            if !hz.is_finite() || hz <= 0.0 {
                return Err(format!("tick_rate_hz = {hz} must be finite and positive"));
            }
        }
        Ok(())
    }
}

/// What happened at one tick of the channel.
///
/// The five kinds mirror Definition 1's deletion-insertion accounting
/// as instrumented by `nsc_core::sim`:
///
/// * `Send` — the sender committed a symbol to the shared medium.
/// * `Recv` — the receiver consumed a genuinely transmitted symbol.
/// * `Delete` — a committed symbol was destroyed before delivery
///   (e.g. overwritten unread).
/// * `Insert` — the receiver consumed a spurious symbol the sender
///   never (re-)committed (e.g. a stale re-read).
/// * `Ack` — the receiver published feedback to the sender.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceEventKind {
    /// Sender committed this symbol.
    Send(u32),
    /// Receiver consumed this genuinely transmitted symbol.
    Recv(u32),
    /// This committed symbol was destroyed before delivery.
    Delete(u32),
    /// Receiver consumed this spurious symbol.
    Insert(u32),
    /// Receiver published feedback.
    Ack,
}

impl TraceEventKind {
    /// The wire name of this kind (`send`/`recv`/`del`/`ins`/`ack`).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            TraceEventKind::Send(_) => "send",
            TraceEventKind::Recv(_) => "recv",
            TraceEventKind::Delete(_) => "del",
            TraceEventKind::Insert(_) => "ins",
            TraceEventKind::Ack => "ack",
        }
    }

    /// The symbol this event carries (`None` for acks).
    #[must_use]
    pub fn symbol(&self) -> Option<u32> {
        match *self {
            TraceEventKind::Send(s)
            | TraceEventKind::Recv(s)
            | TraceEventKind::Delete(s)
            | TraceEventKind::Insert(s) => Some(s),
            TraceEventKind::Ack => None,
        }
    }
}

/// One line of a trace body: a channel event at a tick timestamp.
///
/// Ticks count scheduler quanta from the start of the capture and
/// must be non-decreasing down the file; several events may share a
/// tick (an overwrite is a `del` + `send` pair at the same tick).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceEvent {
    /// Tick timestamp (scheduler quanta since capture start).
    pub tick: u64,
    /// What happened.
    pub kind: TraceEventKind,
}

impl TraceEvent {
    /// Convenience constructor.
    #[must_use]
    pub fn new(tick: u64, kind: TraceEventKind) -> Self {
        TraceEvent { tick, kind }
    }
}

/// The literal wire shape of a body line. Kept separate from
/// [`TraceEvent`] so the public type is a closed enum while the wire
/// form stays a flat, strict JSON object.
#[derive(Debug, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub(crate) struct RawEvent {
    /// Tick timestamp.
    pub t: u64,
    /// Event kind name.
    pub ev: String,
    /// Symbol index; required for all kinds except `ack`, where it
    /// must be absent.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub sym: Option<u32>,
}

impl RawEvent {
    pub(crate) fn from_event(event: &TraceEvent) -> Self {
        RawEvent {
            t: event.tick,
            ev: event.kind.name().to_owned(),
            sym: event.kind.symbol(),
        }
    }

    /// Validates the kind/symbol pairing and converts to the typed
    /// event. The error is a human-readable description without
    /// positional information (callers attach line/column).
    pub(crate) fn into_event(self) -> Result<TraceEvent, String> {
        let kind = match (self.ev.as_str(), self.sym) {
            ("send", Some(s)) => TraceEventKind::Send(s),
            ("recv", Some(s)) => TraceEventKind::Recv(s),
            ("del", Some(s)) => TraceEventKind::Delete(s),
            ("ins", Some(s)) => TraceEventKind::Insert(s),
            ("ack", None) => TraceEventKind::Ack,
            ("ack", Some(_)) => return Err("\"ack\" events must not carry \"sym\"".to_owned()),
            ("send" | "recv" | "del" | "ins", None) => {
                return Err(format!("{:?} events require a \"sym\" field", self.ev))
            }
            (other, _) => {
                return Err(format!(
                    "unknown event kind {other:?} (expected send/recv/del/ins/ack)"
                ))
            }
        };
        Ok(TraceEvent { tick: self.t, kind })
    }
}

impl Serialize for TraceEvent {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        RawEvent::from_event(self).serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for TraceEvent {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        RawEvent::deserialize(deserializer)?
            .into_event()
            .map_err(D::Error::custom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trip_and_validation() {
        let h = TraceHeader::new(3)
            .with_tick_rate(1000.0)
            .with_manifest(serde_json::json!({"plan": "test"}));
        h.validate().unwrap();
        let line = serde_json::to_string(&h).unwrap();
        let back: TraceHeader = serde_json::from_str(&line).unwrap();
        assert_eq!(back, h);

        assert!(TraceHeader::new(0).validate().is_err());
        assert!(TraceHeader::new(17).validate().is_err());
        assert!(TraceHeader::new(1).with_tick_rate(0.0).validate().is_err());
        let mut wrong = TraceHeader::new(1);
        wrong.schema = "nsc-trace/v9".to_owned();
        let msg = wrong.validate().unwrap_err();
        assert!(msg.contains("nsc-trace/v9"), "{msg}");
    }

    #[test]
    fn header_rejects_unknown_fields() {
        let err = serde_json::from_str::<TraceHeader>(
            "{\"schema\":\"nsc-trace/v1\",\"alphabet_bits\":1,\"extra\":true}",
        )
        .unwrap_err();
        assert!(err.to_string().contains("extra"), "{err}");
    }

    #[test]
    fn event_wire_form_is_stable() {
        let cases = [
            (
                TraceEvent::new(0, TraceEventKind::Send(5)),
                "{\"t\":0,\"ev\":\"send\",\"sym\":5}",
            ),
            (
                TraceEvent::new(1, TraceEventKind::Recv(5)),
                "{\"t\":1,\"ev\":\"recv\",\"sym\":5}",
            ),
            (
                TraceEvent::new(2, TraceEventKind::Delete(0)),
                "{\"t\":2,\"ev\":\"del\",\"sym\":0}",
            ),
            (
                TraceEvent::new(3, TraceEventKind::Insert(7)),
                "{\"t\":3,\"ev\":\"ins\",\"sym\":7}",
            ),
            (
                TraceEvent::new(4, TraceEventKind::Ack),
                "{\"t\":4,\"ev\":\"ack\"}",
            ),
        ];
        for (event, wire) in cases {
            assert_eq!(serde_json::to_string(&event).unwrap(), wire);
            let back: TraceEvent = serde_json::from_str(wire).unwrap();
            assert_eq!(back, event);
        }
    }

    #[test]
    fn event_rejects_bad_shapes() {
        for bad in [
            "{\"t\":0,\"ev\":\"send\"}",                   // missing sym
            "{\"t\":0,\"ev\":\"ack\",\"sym\":1}",          // ack with sym
            "{\"t\":0,\"ev\":\"sub\",\"sym\":1}",          // unknown kind
            "{\"t\":0,\"ev\":\"send\",\"sym\":1,\"x\":2}", // unknown field
            "{\"ev\":\"send\",\"sym\":1}",                 // missing tick
        ] {
            assert!(serde_json::from_str::<TraceEvent>(bad).is_err(), "{bad}");
        }
    }
}
