//! The `nsc-trace/v1` on-disk schema.
//!
//! A trace is a JSON-Lines stream: line 1 is a [`TraceHeader`], every
//! following line one [`TraceEvent`]. The format is **strict**:
//! unknown fields, unknown event kinds, out-of-range symbols, and
//! decreasing tick timestamps are all errors, never silently ignored.
//! Any extension — a new field, a new event kind — requires bumping
//! the `schema` string to `nsc-trace/v2`, so a v1 reader can never
//! misinterpret a v2 file.
//!
//! Wire form:
//!
//! ```json
//! {"schema":"nsc-trace/v1","alphabet_bits":3,"tick_rate_hz":1000.0,"manifest":{...}}
//! {"t":0,"ev":"send","sym":5}
//! {"t":1,"ev":"recv","sym":5}
//! {"t":4,"ev":"del","sym":2}
//! {"t":7,"ev":"ins","sym":2}
//! {"t":7,"ev":"ack"}
//! ```

use serde::de::Error as _;
use serde::{Deserialize, Deserializer, Serialize, Serializer};

/// The schema identifier this crate reads and writes.
pub const TRACE_SCHEMA: &str = "nsc-trace/v1";

/// Widest symbol alphabet a trace may declare, matching
/// [`nsc_channel::alphabet::Alphabet`]'s 16-bit ceiling.
pub const MAX_ALPHABET_BITS: u32 = 16;

/// Line 1 of every trace: what was captured and how to interpret it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct TraceHeader {
    /// Schema identifier; must equal [`TRACE_SCHEMA`].
    pub schema: String,
    /// Symbol width in bits (`1..=16`); every event symbol must be
    /// `< 2^alphabet_bits`.
    pub alphabet_bits: u32,
    /// Physical duration of one tick, when known (simulated traces
    /// usually omit it).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub tick_rate_hz: Option<f64>,
    /// Provenance of the capture — for engine campaigns this is the
    /// serialized [`nsc_core::engine::RunManifest`]; arbitrary JSON is
    /// allowed so foreign capture tools can attach their own records.
    #[serde(default, skip_serializing_if = "serde_json::Value::is_null")]
    pub manifest: serde_json::Value,
}

impl TraceHeader {
    /// A header for a `bits`-wide capture with no manifest.
    #[must_use]
    pub fn new(bits: u32) -> Self {
        TraceHeader {
            schema: TRACE_SCHEMA.to_owned(),
            alphabet_bits: bits,
            tick_rate_hz: None,
            manifest: serde_json::Value::Null,
        }
    }

    /// Returns a copy carrying the given provenance manifest.
    #[must_use]
    pub fn with_manifest(mut self, manifest: serde_json::Value) -> Self {
        self.manifest = manifest;
        self
    }

    /// Returns a copy declaring the physical tick rate.
    #[must_use]
    pub fn with_tick_rate(mut self, hz: f64) -> Self {
        self.tick_rate_hz = Some(hz);
        self
    }

    /// Checks the header's invariants, returning what is wrong.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant: wrong
    /// schema string, alphabet width outside `1..=16`, or a
    /// non-positive/non-finite tick rate.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema != TRACE_SCHEMA {
            return Err(format!(
                "unsupported schema {:?} (this reader speaks {TRACE_SCHEMA:?})",
                self.schema
            ));
        }
        if self.alphabet_bits == 0 || self.alphabet_bits > MAX_ALPHABET_BITS {
            return Err(format!(
                "alphabet_bits = {} outside supported range 1..={MAX_ALPHABET_BITS}",
                self.alphabet_bits
            ));
        }
        if let Some(hz) = self.tick_rate_hz {
            if !hz.is_finite() || hz <= 0.0 {
                return Err(format!("tick_rate_hz = {hz} must be finite and positive"));
            }
        }
        Ok(())
    }
}

/// What happened at one tick of the channel.
///
/// The five kinds mirror Definition 1's deletion-insertion accounting
/// as instrumented by `nsc_core::sim`:
///
/// * `Send` — the sender committed a symbol to the shared medium.
/// * `Recv` — the receiver consumed a genuinely transmitted symbol.
/// * `Delete` — a committed symbol was destroyed before delivery
///   (e.g. overwritten unread).
/// * `Insert` — the receiver consumed a spurious symbol the sender
///   never (re-)committed (e.g. a stale re-read).
/// * `Ack` — the receiver published feedback to the sender.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceEventKind {
    /// Sender committed this symbol.
    Send(u32),
    /// Receiver consumed this genuinely transmitted symbol.
    Recv(u32),
    /// This committed symbol was destroyed before delivery.
    Delete(u32),
    /// Receiver consumed this spurious symbol.
    Insert(u32),
    /// Receiver published feedback.
    Ack,
}

impl TraceEventKind {
    /// The wire name of this kind (`send`/`recv`/`del`/`ins`/`ack`).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            TraceEventKind::Send(_) => "send",
            TraceEventKind::Recv(_) => "recv",
            TraceEventKind::Delete(_) => "del",
            TraceEventKind::Insert(_) => "ins",
            TraceEventKind::Ack => "ack",
        }
    }

    /// The symbol this event carries (`None` for acks).
    #[must_use]
    pub fn symbol(&self) -> Option<u32> {
        match *self {
            TraceEventKind::Send(s)
            | TraceEventKind::Recv(s)
            | TraceEventKind::Delete(s)
            | TraceEventKind::Insert(s) => Some(s),
            TraceEventKind::Ack => None,
        }
    }
}

/// One line of a trace body: a channel event at a tick timestamp.
///
/// Ticks count scheduler quanta from the start of the capture and
/// must be non-decreasing down the file; several events may share a
/// tick (an overwrite is a `del` + `send` pair at the same tick).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceEvent {
    /// Tick timestamp (scheduler quanta since capture start).
    pub tick: u64,
    /// What happened.
    pub kind: TraceEventKind,
}

impl TraceEvent {
    /// Convenience constructor.
    #[must_use]
    pub fn new(tick: u64, kind: TraceEventKind) -> Self {
        TraceEvent { tick, kind }
    }
}

/// The literal wire shape of a body line. Kept separate from
/// [`TraceEvent`] so the public type is a closed enum while the wire
/// form stays a flat, strict JSON object.
#[derive(Debug, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub(crate) struct RawEvent {
    /// Tick timestamp.
    pub t: u64,
    /// Event kind name.
    pub ev: String,
    /// Symbol index; required for all kinds except `ack`, where it
    /// must be absent.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub sym: Option<u32>,
}

impl RawEvent {
    pub(crate) fn from_event(event: &TraceEvent) -> Self {
        RawEvent {
            t: event.tick,
            ev: event.kind.name().to_owned(),
            sym: event.kind.symbol(),
        }
    }

    /// Validates the kind/symbol pairing and converts to the typed
    /// event. The error is a human-readable description without
    /// positional information (callers attach line/column).
    pub(crate) fn into_event(self) -> Result<TraceEvent, String> {
        let kind = match (self.ev.as_str(), self.sym) {
            ("send", Some(s)) => TraceEventKind::Send(s),
            ("recv", Some(s)) => TraceEventKind::Recv(s),
            ("del", Some(s)) => TraceEventKind::Delete(s),
            ("ins", Some(s)) => TraceEventKind::Insert(s),
            ("ack", None) => TraceEventKind::Ack,
            ("ack", Some(_)) => return Err("\"ack\" events must not carry \"sym\"".to_owned()),
            ("send" | "recv" | "del" | "ins", None) => {
                return Err(format!("{:?} events require a \"sym\" field", self.ev))
            }
            (other, _) => {
                return Err(format!(
                    "unknown event kind {other:?} (expected send/recv/del/ins/ack)"
                ))
            }
        };
        Ok(TraceEvent { tick: self.t, kind })
    }
}

/// Renders `event` into `buf` (cleared first) in exactly the bytes
/// `serde_json::to_string(&RawEvent::from_event(event))` would
/// produce: `{"t":N,"ev":"kind"}` for acks,
/// `{"t":N,"ev":"kind","sym":M}` otherwise, with no whitespace.
///
/// This is the writer's allocation-free fast path: all event fields
/// are integers or fixed strings, so hand-rolling the line skips the
/// serde machinery entirely. Byte identity with the serde renderer is
/// pinned by tests in this module and in the integration suite.
/// Renders `event` as its canonical wire line (no trailing newline)
/// into `buf`, clearing it first. This is the exact byte shape
/// [`parse_canonical_event`] fast-paths, shared by [`TraceWriter`]
/// and the `nsc loadgen` replay path.
///
/// [`TraceWriter`]: crate::writer::TraceWriter
// nsc-lint: hot
pub fn render_event_line(buf: &mut Vec<u8>, event: &TraceEvent) {
    buf.clear();
    buf.extend_from_slice(b"{\"t\":");
    push_u64(buf, event.tick);
    buf.extend_from_slice(b",\"ev\":\"");
    buf.extend_from_slice(event.kind.name().as_bytes());
    buf.push(b'"');
    if let Some(sym) = event.kind.symbol() {
        buf.extend_from_slice(b",\"sym\":");
        push_u64(buf, u64::from(sym));
    }
    buf.push(b'}');
}

/// Appends `value` in decimal to `buf`.
// nsc-lint: hot
fn push_u64(buf: &mut Vec<u8>, mut value: u64) {
    let mut digits = [0u8; 20];
    let mut at = digits.len();
    loop {
        at -= 1;
        digits[at] = b'0' + (value % 10) as u8;
        value /= 10;
        if value == 0 {
            break;
        }
    }
    buf.extend_from_slice(&digits[at..]);
}

/// Parses one body line **only when it has the exact canonical shape**
/// [`render_event_line`] produces — the reader's fast path. Any
/// deviation (whitespace, reordered keys, leading zeros, unknown
/// kinds, a `sym` on an ack, trailing bytes, out-of-range integers)
/// returns `None`, and the caller falls back to the strict serde
/// path, so acceptance and error reporting are bit-for-bit unchanged.
pub(crate) fn parse_canonical_event(line: &str) -> Option<TraceEvent> {
    let rest = line.as_bytes().strip_prefix(b"{\"t\":")?;
    let (tick, rest) = take_u64(rest)?;
    let rest = rest.strip_prefix(b",\"ev\":\"")?;
    // Kind names are fixed; match the name and closing quote at once.
    let (name_len, sym_required) = match rest {
        [b's', b'e', b'n', b'd', b'"', ..] => (5, true),
        [b'r', b'e', b'c', b'v', b'"', ..] => (5, true),
        [b'd', b'e', b'l', b'"', ..] => (4, true),
        [b'i', b'n', b's', b'"', ..] => (4, true),
        [b'a', b'c', b'k', b'"', ..] => (4, false),
        _ => return None,
    };
    let kind_name = &rest[..name_len - 1];
    let rest = &rest[name_len..];
    let (sym, rest) = if sym_required {
        let rest = rest.strip_prefix(b",\"sym\":")?;
        let (sym, rest) = take_u64(rest)?;
        (Some(u32::try_from(sym).ok()?), rest)
    } else {
        (None, rest)
    };
    if rest != b"}" {
        return None;
    }
    let kind = match (kind_name, sym) {
        (b"send", Some(s)) => TraceEventKind::Send(s),
        (b"recv", Some(s)) => TraceEventKind::Recv(s),
        (b"del", Some(s)) => TraceEventKind::Delete(s),
        (b"ins", Some(s)) => TraceEventKind::Insert(s),
        (b"ack", None) => TraceEventKind::Ack,
        _ => return None,
    };
    Some(TraceEvent { tick, kind })
}

/// Reads a canonical JSON integer (digits, no leading zero unless the
/// value is exactly `0`, no overflow) off the front of `bytes`.
fn take_u64(bytes: &[u8]) -> Option<(u64, &[u8])> {
    let digits = bytes.iter().take_while(|b| b.is_ascii_digit()).count();
    if digits == 0 || (digits > 1 && bytes[0] == b'0') {
        return None;
    }
    let mut value = 0u64;
    for &b in &bytes[..digits] {
        value = value.checked_mul(10)?.checked_add(u64::from(b - b'0'))?;
    }
    Some((value, &bytes[digits..]))
}

impl Serialize for TraceEvent {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        RawEvent::from_event(self).serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for TraceEvent {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        RawEvent::deserialize(deserializer)?
            .into_event()
            .map_err(D::Error::custom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trip_and_validation() {
        let h = TraceHeader::new(3)
            .with_tick_rate(1000.0)
            .with_manifest(serde_json::json!({"plan": "test"}));
        h.validate().unwrap();
        let line = serde_json::to_string(&h).unwrap();
        let back: TraceHeader = serde_json::from_str(&line).unwrap();
        assert_eq!(back, h);

        assert!(TraceHeader::new(0).validate().is_err());
        assert!(TraceHeader::new(17).validate().is_err());
        assert!(TraceHeader::new(1).with_tick_rate(0.0).validate().is_err());
        let mut wrong = TraceHeader::new(1);
        wrong.schema = "nsc-trace/v9".to_owned();
        let msg = wrong.validate().unwrap_err();
        assert!(msg.contains("nsc-trace/v9"), "{msg}");
    }

    #[test]
    fn header_rejects_unknown_fields() {
        let err = serde_json::from_str::<TraceHeader>(
            "{\"schema\":\"nsc-trace/v1\",\"alphabet_bits\":1,\"extra\":true}",
        )
        .unwrap_err();
        assert!(err.to_string().contains("extra"), "{err}");
    }

    #[test]
    fn event_wire_form_is_stable() {
        let cases = [
            (
                TraceEvent::new(0, TraceEventKind::Send(5)),
                "{\"t\":0,\"ev\":\"send\",\"sym\":5}",
            ),
            (
                TraceEvent::new(1, TraceEventKind::Recv(5)),
                "{\"t\":1,\"ev\":\"recv\",\"sym\":5}",
            ),
            (
                TraceEvent::new(2, TraceEventKind::Delete(0)),
                "{\"t\":2,\"ev\":\"del\",\"sym\":0}",
            ),
            (
                TraceEvent::new(3, TraceEventKind::Insert(7)),
                "{\"t\":3,\"ev\":\"ins\",\"sym\":7}",
            ),
            (
                TraceEvent::new(4, TraceEventKind::Ack),
                "{\"t\":4,\"ev\":\"ack\"}",
            ),
        ];
        for (event, wire) in cases {
            assert_eq!(serde_json::to_string(&event).unwrap(), wire);
            let back: TraceEvent = serde_json::from_str(wire).unwrap();
            assert_eq!(back, event);
        }
    }

    #[test]
    fn manual_renderer_matches_serde_byte_for_byte() {
        let mut buf = Vec::new();
        for tick in [0u64, 1, 9, 10, 12345, u64::MAX] {
            for kind in [
                TraceEventKind::Send(0),
                TraceEventKind::Recv(1),
                TraceEventKind::Delete(65_535),
                TraceEventKind::Insert(u32::MAX),
                TraceEventKind::Ack,
            ] {
                let event = TraceEvent::new(tick, kind);
                render_event_line(&mut buf, &event);
                let serde_line = serde_json::to_string(&RawEvent::from_event(&event)).unwrap();
                assert_eq!(buf, serde_line.as_bytes(), "{serde_line}");
            }
        }
    }

    #[test]
    fn canonical_parser_inverts_renderer() {
        let mut buf = Vec::new();
        for tick in [0u64, 7, 1_000_000, u64::MAX] {
            for kind in [
                TraceEventKind::Send(3),
                TraceEventKind::Recv(0),
                TraceEventKind::Delete(12),
                TraceEventKind::Insert(u32::MAX),
                TraceEventKind::Ack,
            ] {
                let event = TraceEvent::new(tick, kind);
                render_event_line(&mut buf, &event);
                let line = std::str::from_utf8(&buf).unwrap();
                assert_eq!(parse_canonical_event(line), Some(event), "{line}");
            }
        }
    }

    #[test]
    fn canonical_parser_rejects_every_deviation() {
        // Valid JSON the serde path accepts, but not canonical — the
        // fast path must step aside, not guess.
        for non_canonical in [
            "{\"ev\":\"send\",\"t\":0,\"sym\":1}",  // reordered keys
            "{\"t\": 0,\"ev\":\"send\",\"sym\":1}", // whitespace
            "{\"t\":00,\"ev\":\"ack\"}",            // leading zero
            "{\"t\":0,\"ev\":\"ack\"} ",            // trailing bytes
            "{\"t\":0,\"ev\":\"ack\",\"sym\":1}",   // ack with sym
            "{\"t\":0,\"ev\":\"warp\",\"sym\":1}",  // unknown kind
            "{\"t\":0,\"ev\":\"send\"}",            // missing sym
            "{\"t\":0,\"ev\":\"send\",\"sym\":4294967296}", // sym > u32
            "{\"t\":18446744073709551616,\"ev\":\"ack\"}", // tick > u64
            "",
        ] {
            assert_eq!(
                parse_canonical_event(non_canonical),
                None,
                "{non_canonical}"
            );
        }
    }

    #[test]
    fn event_rejects_bad_shapes() {
        for bad in [
            "{\"t\":0,\"ev\":\"send\"}",                   // missing sym
            "{\"t\":0,\"ev\":\"ack\",\"sym\":1}",          // ack with sym
            "{\"t\":0,\"ev\":\"sub\",\"sym\":1}",          // unknown kind
            "{\"t\":0,\"ev\":\"send\",\"sym\":1,\"x\":2}", // unknown field
            "{\"ev\":\"send\",\"sym\":1}",                 // missing tick
        ] {
            assert!(serde_json::from_str::<TraceEvent>(bad).is_err(), "{bad}");
        }
    }
}
