//! Validating JSONL writer for `nsc-trace/v1` streams.

use crate::error::TraceError;
use crate::format::{render_event_line, TraceEvent, TraceHeader};
use std::io::Write;

/// A streaming trace writer.
///
/// Writes the header on construction, then one line per event,
/// enforcing on the way **out** exactly what [`crate::TraceReader`]
/// enforces on the way in: symbols inside the declared alphabet and
/// non-decreasing ticks. A `TraceWriter` therefore cannot produce a
/// file its own reader rejects.
///
/// # Example
///
/// ```
/// use nsc_trace::{TraceEvent, TraceEventKind, TraceHeader, TraceWriter};
///
/// let mut out = Vec::new();
/// let mut w = TraceWriter::new(&mut out, &TraceHeader::new(1))?;
/// w.write_event(TraceEvent::new(0, TraceEventKind::Send(1)))?;
/// w.write_event(TraceEvent::new(1, TraceEventKind::Recv(1)))?;
/// w.finish()?;
/// assert_eq!(String::from_utf8(out).unwrap().lines().count(), 3);
/// # Ok::<(), nsc_trace::TraceError>(())
/// ```
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    sink: W,
    bits: u32,
    events: u64,
    last_tick: Option<u64>,
    /// Reusable line buffer for the manual serializer: event lines
    /// are all-integer, so rendering them by hand (byte-identical to
    /// the serde form — pinned by tests) keeps the per-event path
    /// allocation-free.
    line_buf: Vec<u8>,
}

impl<W: Write> TraceWriter<W> {
    /// Validates `header` and writes it as line 1.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Malformed`] (line 1) when the header
    /// violates its invariants, or [`TraceError::Io`] on write
    /// failure.
    pub fn new(mut sink: W, header: &TraceHeader) -> Result<Self, TraceError> {
        header
            .validate()
            .map_err(|msg| TraceError::malformed(1, msg))?;
        let line = serde_json::to_string(header).map_err(|e| TraceError::json(1, &e))?;
        sink.write_all(line.as_bytes())?;
        sink.write_all(b"\n")?;
        Ok(TraceWriter {
            sink,
            bits: header.alphabet_bits,
            events: 0,
            last_tick: None,
            line_buf: Vec::with_capacity(64),
        })
    }

    /// Appends one event line.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Malformed`] — positioned at the line the
    /// event *would have* occupied — when the symbol is outside the
    /// declared alphabet or the tick decreases, and [`TraceError::Io`]
    /// on write failure.
    pub fn write_event(&mut self, event: TraceEvent) -> Result<(), TraceError> {
        let line = self.events + 2; // header is line 1
        if let Some(sym) = event.kind.symbol() {
            if u64::from(sym) >= 1u64 << self.bits {
                return Err(TraceError::malformed(
                    line,
                    format!(
                        "symbol {sym} outside the declared {}-bit alphabet",
                        self.bits
                    ),
                ));
            }
        }
        if let Some(last) = self.last_tick {
            if event.tick < last {
                return Err(TraceError::malformed(
                    line,
                    format!("tick {} decreases (previous event at {last})", event.tick),
                ));
            }
        }
        render_event_line(&mut self.line_buf, &event);
        self.line_buf.push(b'\n');
        self.sink.write_all(&self.line_buf)?;
        self.events += 1;
        self.last_tick = Some(event.tick);
        Ok(())
    }

    /// Appends every event from an iterator.
    ///
    /// # Errors
    ///
    /// Propagates the first [`write_event`](Self::write_event)
    /// failure; events before it are already written.
    pub fn write_events<I>(&mut self, events: I) -> Result<(), TraceError>
    where
        I: IntoIterator<Item = TraceEvent>,
    {
        for event in events {
            self.write_event(event)?;
        }
        Ok(())
    }

    /// Events written so far (excluding the header).
    #[must_use]
    pub fn events_written(&self) -> u64 {
        self.events
    }

    /// Flushes and returns the underlying sink.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] when the flush fails.
    pub fn finish(mut self) -> Result<W, TraceError> {
        self.sink.flush()?;
        Ok(self.sink)
    }
}

/// Writes a complete trace — header plus events — to `sink`,
/// returning the number of event lines written.
///
/// # Errors
///
/// Same conditions as [`TraceWriter::new`] and
/// [`TraceWriter::write_event`].
pub fn write_trace<W, I>(sink: W, header: &TraceHeader, events: I) -> Result<u64, TraceError>
where
    W: Write,
    I: IntoIterator<Item = TraceEvent>,
{
    let mut writer = TraceWriter::new(sink, header)?;
    writer.write_events(events)?;
    let written = writer.events_written();
    writer.finish()?;
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::TraceEventKind;

    #[test]
    fn rejects_invalid_headers_and_events() {
        assert!(TraceWriter::new(Vec::new(), &TraceHeader::new(0)).is_err());

        let mut w = TraceWriter::new(Vec::new(), &TraceHeader::new(2)).unwrap();
        let err = w
            .write_event(TraceEvent::new(0, TraceEventKind::Send(4)))
            .unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");

        w.write_event(TraceEvent::new(5, TraceEventKind::Send(3)))
            .unwrap();
        let err = w
            .write_event(TraceEvent::new(4, TraceEventKind::Ack))
            .unwrap_err();
        assert!(err.to_string().contains("line 3"), "{err}");
        assert!(err.to_string().contains("decreases"), "{err}");
        assert_eq!(w.events_written(), 1);
    }

    #[test]
    fn manual_lines_are_byte_identical_to_serde_rendering() {
        use crate::format::RawEvent;
        let events = vec![
            TraceEvent::new(0, TraceEventKind::Send(3)),
            TraceEvent::new(0, TraceEventKind::Delete(0)),
            TraceEvent::new(1, TraceEventKind::Recv(3)),
            TraceEvent::new(7, TraceEventKind::Insert(2)),
            TraceEvent::new(7, TraceEventKind::Ack),
            TraceEvent::new(u64::MAX, TraceEventKind::Ack),
        ];
        let mut out = Vec::new();
        write_trace(&mut out, &TraceHeader::new(2), events.clone()).unwrap();
        let text = String::from_utf8(out).unwrap();
        for (line, event) in text.lines().skip(1).zip(&events) {
            let serde_line = serde_json::to_string(&RawEvent::from_event(event)).unwrap();
            assert_eq!(line, serde_line);
        }
    }

    #[test]
    fn write_trace_emits_one_line_per_record() {
        let events = vec![
            TraceEvent::new(0, TraceEventKind::Send(1)),
            TraceEvent::new(0, TraceEventKind::Delete(0)),
            TraceEvent::new(2, TraceEventKind::Ack),
        ];
        let mut out = Vec::new();
        let n = write_trace(&mut out, &TraceHeader::new(1), events).unwrap();
        assert_eq!(n, 3);
        let text = String::from_utf8(out).unwrap();
        assert_eq!(text.lines().count(), 4);
        assert!(text.starts_with("{\"schema\":\"nsc-trace/v1\""));
        assert!(text.ends_with('\n'));
    }
}
