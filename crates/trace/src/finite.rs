//! Serializer-level guard against non-finite floats in JSON output.
//!
//! `serde_json` silently renders `NaN` and `±inf` as `null` — at
//! [`serde_json::to_value`] time, before any post-hoc inspection can
//! tell a poisoned float from a legitimate absent field. Every JSON
//! document the workspace emits (`nsc estimate`, `nsc serve
//! --status`) is diffed by `jq`-based determinism checks that a
//! surprise `null` would quietly satisfy, so the guard has to run on
//! the **source struct**: [`check_finite_json`] walks a
//! [`Serialize`] value with a checking serializer that rejects the
//! first non-finite `f64`/`f32` it sees, naming the field path.
//! [`to_finite_value`] is the checked replacement for
//! [`serde_json::to_value`].

use serde::ser::{self, Impossible, Serialize};
use serde_json::Value;

use crate::error::TraceError;

/// Verifies that serializing `value` would emit only finite floats.
///
/// # Errors
///
/// Returns [`TraceError::NonFinite`] naming the path of the first
/// `NaN`/`±inf` `f64` (or `f32`) encountered.
pub fn check_finite_json<T: Serialize + ?Sized>(value: &T) -> Result<(), TraceError> {
    let mut state = State {
        path: Vec::new(),
        pending_key: None,
    };
    value
        .serialize(FiniteCheck { state: &mut state })
        .map_err(|e| TraceError::NonFinite(e.0))
}

/// [`serde_json::to_value`], but failing loudly on non-finite floats
/// instead of letting them decay to `null`.
///
/// # Errors
///
/// [`TraceError::NonFinite`] when `value` holds a `NaN`/`±inf`
/// float; [`TraceError::Inference`] when `serde_json` itself cannot
/// represent the value.
pub fn to_finite_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, TraceError> {
    check_finite_json(value)?;
    serde_json::to_value(value).map_err(|e| TraceError::Inference(e.to_string()))
}

/// Error carrying the dotted path to the offending float.
#[derive(Debug)]
struct NonFinite(String);

impl std::fmt::Display for NonFinite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "non-finite f64 at {}", self.0)
    }
}

impl std::error::Error for NonFinite {}

impl ser::Error for NonFinite {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        NonFinite(msg.to_string())
    }
}

/// Shared walk state: the current field path plus the map key being
/// captured (map keys arrive through their own serializer call).
struct State {
    path: Vec<String>,
    pending_key: Option<String>,
}

impl State {
    fn location(&self) -> String {
        if self.path.is_empty() {
            "<root>".to_owned()
        } else {
            self.path.join(".")
        }
    }
}

/// The checking serializer: output-free, errors on the first
/// non-finite float. Reborrowed (`FiniteCheck { state: &mut
/// *self.state }`) at every recursion so one `State` threads through
/// the whole walk.
struct FiniteCheck<'a> {
    state: &'a mut State,
}

impl<'a> FiniteCheck<'a> {
    fn reborrow(&mut self) -> FiniteCheck<'_> {
        FiniteCheck {
            state: &mut *self.state,
        }
    }

    fn check(&self, v: f64) -> Result<(), NonFinite> {
        if v.is_finite() {
            Ok(())
        } else {
            Err(NonFinite(format!("{} ({v})", self.state.location())))
        }
    }
}

impl<'a> ser::Serializer for FiniteCheck<'a> {
    type Ok = ();
    type Error = NonFinite;
    type SerializeSeq = SeqCheck<'a>;
    type SerializeTuple = SeqCheck<'a>;
    type SerializeTupleStruct = SeqCheck<'a>;
    type SerializeTupleVariant = SeqCheck<'a>;
    type SerializeMap = FiniteCheck<'a>;
    type SerializeStruct = FiniteCheck<'a>;
    type SerializeStructVariant = FiniteCheck<'a>;

    fn serialize_bool(self, _: bool) -> Result<(), NonFinite> {
        Ok(())
    }
    fn serialize_i8(self, _: i8) -> Result<(), NonFinite> {
        Ok(())
    }
    fn serialize_i16(self, _: i16) -> Result<(), NonFinite> {
        Ok(())
    }
    fn serialize_i32(self, _: i32) -> Result<(), NonFinite> {
        Ok(())
    }
    fn serialize_i64(self, _: i64) -> Result<(), NonFinite> {
        Ok(())
    }
    fn serialize_u8(self, _: u8) -> Result<(), NonFinite> {
        Ok(())
    }
    fn serialize_u16(self, _: u16) -> Result<(), NonFinite> {
        Ok(())
    }
    fn serialize_u32(self, _: u32) -> Result<(), NonFinite> {
        Ok(())
    }
    fn serialize_u64(self, _: u64) -> Result<(), NonFinite> {
        Ok(())
    }
    fn serialize_f32(self, v: f32) -> Result<(), NonFinite> {
        self.check(f64::from(v))
    }
    fn serialize_f64(self, v: f64) -> Result<(), NonFinite> {
        self.check(v)
    }
    fn serialize_char(self, _: char) -> Result<(), NonFinite> {
        Ok(())
    }
    fn serialize_str(self, _: &str) -> Result<(), NonFinite> {
        Ok(())
    }
    fn serialize_bytes(self, _: &[u8]) -> Result<(), NonFinite> {
        Ok(())
    }
    fn serialize_none(self) -> Result<(), NonFinite> {
        Ok(())
    }
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<(), NonFinite> {
        value.serialize(self)
    }
    fn serialize_unit(self) -> Result<(), NonFinite> {
        Ok(())
    }
    fn serialize_unit_struct(self, _: &'static str) -> Result<(), NonFinite> {
        Ok(())
    }
    fn serialize_unit_variant(
        self,
        _: &'static str,
        _: u32,
        _: &'static str,
    ) -> Result<(), NonFinite> {
        Ok(())
    }
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _: &'static str,
        value: &T,
    ) -> Result<(), NonFinite> {
        value.serialize(self)
    }
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        mut self,
        _: &'static str,
        _: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<(), NonFinite> {
        self.state.path.push(variant.to_owned());
        let result = value.serialize(self.reborrow());
        self.state.path.pop();
        result
    }
    fn serialize_seq(self, _: Option<usize>) -> Result<SeqCheck<'a>, NonFinite> {
        Ok(SeqCheck {
            state: self.state,
            index: 0,
        })
    }
    fn serialize_tuple(self, len: usize) -> Result<SeqCheck<'a>, NonFinite> {
        self.serialize_seq(Some(len))
    }
    fn serialize_tuple_struct(
        self,
        _: &'static str,
        len: usize,
    ) -> Result<SeqCheck<'a>, NonFinite> {
        self.serialize_seq(Some(len))
    }
    fn serialize_tuple_variant(
        self,
        _: &'static str,
        _: u32,
        variant: &'static str,
        _: usize,
    ) -> Result<SeqCheck<'a>, NonFinite> {
        self.state.path.push(variant.to_owned());
        Ok(SeqCheck {
            state: self.state,
            index: 0,
        })
    }
    fn serialize_map(self, _: Option<usize>) -> Result<FiniteCheck<'a>, NonFinite> {
        Ok(self)
    }
    fn serialize_struct(self, _: &'static str, _: usize) -> Result<FiniteCheck<'a>, NonFinite> {
        Ok(self)
    }
    fn serialize_struct_variant(
        self,
        _: &'static str,
        _: u32,
        variant: &'static str,
        _: usize,
    ) -> Result<FiniteCheck<'a>, NonFinite> {
        self.state.path.push(variant.to_owned());
        Ok(self)
    }
}

impl ser::SerializeStruct for FiniteCheck<'_> {
    type Ok = ();
    type Error = NonFinite;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), NonFinite> {
        self.state.path.push(key.to_owned());
        let result = value.serialize(self.reborrow());
        self.state.path.pop();
        result
    }

    fn end(self) -> Result<(), NonFinite> {
        Ok(())
    }
}

impl ser::SerializeStructVariant for FiniteCheck<'_> {
    type Ok = ();
    type Error = NonFinite;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), NonFinite> {
        ser::SerializeStruct::serialize_field(self, key, value)
    }

    fn end(mut self) -> Result<(), NonFinite> {
        self.state.path.pop();
        Ok(())
    }
}

impl ser::SerializeMap for FiniteCheck<'_> {
    type Ok = ();
    type Error = NonFinite;

    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), NonFinite> {
        let mut captured = None;
        key.serialize(KeyCapture {
            slot: &mut captured,
        })?;
        self.state.pending_key = Some(captured.unwrap_or_else(|| "<key>".to_owned()));
        Ok(())
    }

    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), NonFinite> {
        let key = self
            .state
            .pending_key
            .take()
            .unwrap_or_else(|| "<key>".to_owned());
        self.state.path.push(key);
        let result = value.serialize(self.reborrow());
        self.state.path.pop();
        result
    }

    fn end(self) -> Result<(), NonFinite> {
        Ok(())
    }
}

/// Sequence walker: path segments are bracketed indices.
struct SeqCheck<'a> {
    state: &'a mut State,
    index: usize,
}

impl SeqCheck<'_> {
    fn element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), NonFinite> {
        self.state.path.push(format!("[{}]", self.index));
        self.index += 1;
        let result = value.serialize(FiniteCheck {
            state: &mut *self.state,
        });
        self.state.path.pop();
        result
    }
}

impl ser::SerializeSeq for SeqCheck<'_> {
    type Ok = ();
    type Error = NonFinite;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), NonFinite> {
        self.element(value)
    }

    fn end(self) -> Result<(), NonFinite> {
        Ok(())
    }
}

impl ser::SerializeTuple for SeqCheck<'_> {
    type Ok = ();
    type Error = NonFinite;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), NonFinite> {
        self.element(value)
    }

    fn end(self) -> Result<(), NonFinite> {
        Ok(())
    }
}

impl ser::SerializeTupleStruct for SeqCheck<'_> {
    type Ok = ();
    type Error = NonFinite;

    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), NonFinite> {
        self.element(value)
    }

    fn end(self) -> Result<(), NonFinite> {
        Ok(())
    }
}

impl ser::SerializeTupleVariant for SeqCheck<'_> {
    type Ok = ();
    type Error = NonFinite;

    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), NonFinite> {
        self.element(value)
    }

    fn end(self) -> Result<(), NonFinite> {
        self.state.path.pop();
        Ok(())
    }
}

/// Captures a map key's string form; non-string keys fall back to a
/// placeholder rather than failing the walk.
struct KeyCapture<'a> {
    slot: &'a mut Option<String>,
}

impl KeyCapture<'_> {
    fn record(self, text: String) -> Result<(), NonFinite> {
        *self.slot = Some(text);
        Ok(())
    }
}

impl ser::Serializer for KeyCapture<'_> {
    type Ok = ();
    type Error = NonFinite;
    type SerializeSeq = Impossible<(), NonFinite>;
    type SerializeTuple = Impossible<(), NonFinite>;
    type SerializeTupleStruct = Impossible<(), NonFinite>;
    type SerializeTupleVariant = Impossible<(), NonFinite>;
    type SerializeMap = Impossible<(), NonFinite>;
    type SerializeStruct = Impossible<(), NonFinite>;
    type SerializeStructVariant = Impossible<(), NonFinite>;

    fn serialize_bool(self, v: bool) -> Result<(), NonFinite> {
        self.record(v.to_string())
    }
    fn serialize_i8(self, v: i8) -> Result<(), NonFinite> {
        self.record(v.to_string())
    }
    fn serialize_i16(self, v: i16) -> Result<(), NonFinite> {
        self.record(v.to_string())
    }
    fn serialize_i32(self, v: i32) -> Result<(), NonFinite> {
        self.record(v.to_string())
    }
    fn serialize_i64(self, v: i64) -> Result<(), NonFinite> {
        self.record(v.to_string())
    }
    fn serialize_u8(self, v: u8) -> Result<(), NonFinite> {
        self.record(v.to_string())
    }
    fn serialize_u16(self, v: u16) -> Result<(), NonFinite> {
        self.record(v.to_string())
    }
    fn serialize_u32(self, v: u32) -> Result<(), NonFinite> {
        self.record(v.to_string())
    }
    fn serialize_u64(self, v: u64) -> Result<(), NonFinite> {
        self.record(v.to_string())
    }
    fn serialize_f32(self, v: f32) -> Result<(), NonFinite> {
        self.record(v.to_string())
    }
    fn serialize_f64(self, v: f64) -> Result<(), NonFinite> {
        self.record(v.to_string())
    }
    fn serialize_char(self, v: char) -> Result<(), NonFinite> {
        self.record(v.to_string())
    }
    fn serialize_str(self, v: &str) -> Result<(), NonFinite> {
        self.record(v.to_owned())
    }
    fn serialize_bytes(self, _: &[u8]) -> Result<(), NonFinite> {
        self.record("<bytes>".to_owned())
    }
    fn serialize_none(self) -> Result<(), NonFinite> {
        self.record("<none>".to_owned())
    }
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<(), NonFinite> {
        value.serialize(self)
    }
    fn serialize_unit(self) -> Result<(), NonFinite> {
        self.record("<unit>".to_owned())
    }
    fn serialize_unit_struct(self, name: &'static str) -> Result<(), NonFinite> {
        self.record(name.to_owned())
    }
    fn serialize_unit_variant(
        self,
        _: &'static str,
        _: u32,
        variant: &'static str,
    ) -> Result<(), NonFinite> {
        self.record(variant.to_owned())
    }
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _: &'static str,
        value: &T,
    ) -> Result<(), NonFinite> {
        value.serialize(self)
    }
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _: &'static str,
        _: u32,
        _: &'static str,
        value: &T,
    ) -> Result<(), NonFinite> {
        value.serialize(self)
    }
    fn serialize_seq(self, _: Option<usize>) -> Result<Self::SerializeSeq, NonFinite> {
        Err(ser::Error::custom("map key cannot be a sequence"))
    }
    fn serialize_tuple(self, _: usize) -> Result<Self::SerializeTuple, NonFinite> {
        Err(ser::Error::custom("map key cannot be a tuple"))
    }
    fn serialize_tuple_struct(
        self,
        _: &'static str,
        _: usize,
    ) -> Result<Self::SerializeTupleStruct, NonFinite> {
        Err(ser::Error::custom("map key cannot be a tuple"))
    }
    fn serialize_tuple_variant(
        self,
        _: &'static str,
        _: u32,
        _: &'static str,
        _: usize,
    ) -> Result<Self::SerializeTupleVariant, NonFinite> {
        Err(ser::Error::custom("map key cannot be a tuple"))
    }
    fn serialize_map(self, _: Option<usize>) -> Result<Self::SerializeMap, NonFinite> {
        Err(ser::Error::custom("map key cannot be a map"))
    }
    fn serialize_struct(
        self,
        _: &'static str,
        _: usize,
    ) -> Result<Self::SerializeStruct, NonFinite> {
        Err(ser::Error::custom("map key cannot be a struct"))
    }
    fn serialize_struct_variant(
        self,
        _: &'static str,
        _: u32,
        _: &'static str,
        _: usize,
    ) -> Result<Self::SerializeStructVariant, NonFinite> {
        Err(ser::Error::custom("map key cannot be a struct"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Serialize;
    use serde_json::json;

    #[derive(Serialize)]
    struct Nested {
        label: String,
        value: f64,
    }

    #[derive(Serialize)]
    struct Doc {
        count: u64,
        inner: Vec<Nested>,
        #[serde(skip_serializing_if = "Option::is_none")]
        maybe: Option<f64>,
    }

    fn doc(value: f64, maybe: Option<f64>) -> Doc {
        Doc {
            count: 3,
            inner: vec![
                Nested {
                    label: "ok".to_owned(),
                    value: 0.5,
                },
                Nested {
                    label: "probe".to_owned(),
                    value,
                },
            ],
            maybe,
        }
    }

    #[test]
    fn finite_documents_pass() {
        check_finite_json(&doc(1.25, Some(0.75))).unwrap();
        check_finite_json(&doc(f64::MAX, None)).unwrap();
        let v = to_finite_value(&doc(1.25, None)).unwrap();
        assert_eq!(v["inner"][1]["value"], json!(1.25));
    }

    #[test]
    fn nan_is_rejected_with_a_path() {
        let err = check_finite_json(&doc(f64::NAN, None)).unwrap_err();
        let TraceError::NonFinite(path) = &err else {
            panic!("expected NonFinite, got {err:?}");
        };
        assert!(path.contains("inner.[1].value"), "{path}");
        assert!(err.to_string().contains("non-finite"), "{err}");
    }

    #[test]
    fn infinities_are_rejected_anywhere() {
        assert!(check_finite_json(&doc(f64::INFINITY, None)).is_err());
        let err = check_finite_json(&doc(0.0, Some(f64::NEG_INFINITY))).unwrap_err();
        let TraceError::NonFinite(path) = err else {
            panic!("wrong variant");
        };
        assert!(path.contains("maybe"), "{path}");
    }

    #[test]
    fn map_keys_name_the_offending_entry() {
        let mut map = std::collections::BTreeMap::new();
        map.insert("good".to_owned(), 1.0_f64);
        map.insert("bad".to_owned(), f64::NAN);
        let err = check_finite_json(&map).unwrap_err();
        let TraceError::NonFinite(path) = err else {
            panic!("wrong variant");
        };
        assert!(path.contains("bad"), "{path}");
    }

    #[test]
    fn serde_json_null_decay_is_the_bug_this_guards() {
        // Document the failure mode: serde_json renders NaN as null
        // with no error, which is exactly what the guard pre-empts.
        let silent = serde_json::to_value(f64::NAN).unwrap();
        assert!(silent.is_null());
        assert!(matches!(
            to_finite_value(&f64::NAN),
            Err(TraceError::NonFinite(_))
        ));
    }

    #[test]
    fn json_values_are_checked_too() {
        // A pre-rendered Value can't hold NaN (it is already null),
        // but the checker must still accept legitimate nulls.
        let v = json!({"manifest": null, "p": 0.25});
        check_finite_json(&v).unwrap();
    }
}
