//! Error type for trace capture, parsing, and inference.

use std::fmt;
use std::io;

/// Errors produced while writing, reading, or analysing a trace.
#[derive(Debug)]
pub enum TraceError {
    /// An underlying I/O failure.
    Io(io::Error),
    /// A line of the trace failed to parse or validate. `line` and
    /// `column` are 1-based positions in the trace stream (the header
    /// is line 1); `column` is 1 when the defect spans the whole line.
    Malformed {
        /// 1-based line number of the offending record.
        line: u64,
        /// 1-based column of the defect within the line.
        column: u64,
        /// What was wrong.
        message: String,
    },
    /// The trace is well-formed but cannot support the requested
    /// inference (e.g. no send events to estimate `P_d` from).
    Inference(String),
    /// A value destined for JSON output contains a non-finite `f64`
    /// (`NaN`/`±inf`), which `serde_json` would silently render as
    /// `null`. The payload names the offending field path.
    NonFinite(String),
}

impl TraceError {
    /// Shorthand for a whole-line [`TraceError::Malformed`].
    pub(crate) fn malformed(line: u64, message: impl Into<String>) -> Self {
        TraceError::Malformed {
            line,
            column: 1,
            message: message.into(),
        }
    }

    /// Wraps a `serde_json` parse failure, translating its in-line
    /// position into a trace-stream position on `line`.
    pub(crate) fn json(line: u64, err: &serde_json::Error) -> Self {
        TraceError::Malformed {
            line,
            column: err.column().max(1) as u64,
            message: err.to_string(),
        }
    }
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::Malformed {
                line,
                column,
                message,
            } => write!(f, "trace line {line}, column {column}: {message}"),
            TraceError::Inference(msg) => write!(f, "trace inference error: {msg}"),
            TraceError::NonFinite(path) => {
                write!(f, "non-finite f64 in JSON output at {path}")
            }
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_line_and_column() {
        let e = TraceError::Malformed {
            line: 3,
            column: 17,
            message: "bad symbol".to_owned(),
        };
        let s = e.to_string();
        assert!(s.contains("line 3"), "{s}");
        assert!(s.contains("column 17"), "{s}");
        assert!(s.contains("bad symbol"), "{s}");
    }

    #[test]
    fn json_errors_keep_their_column() {
        let err = serde_json::from_str::<serde_json::Value>("{\"t\": }").unwrap_err();
        let e = TraceError::json(7, &err);
        match e {
            TraceError::Malformed { line, column, .. } => {
                assert_eq!(line, 7);
                assert!(column >= 1);
            }
            other => panic!("unexpected variant: {other:?}"),
        }
    }

    #[test]
    fn io_source_chain() {
        use std::error::Error;
        let e = TraceError::from(io::Error::other("boom"));
        assert!(e.source().is_some());
        assert!(!TraceError::Inference("x".to_owned()).to_string().is_empty());
    }
}
