//! Parameter inference over captured traces: maximum-likelihood
//! `(P_d, P_i)` with Wilson and likelihood-ratio confidence
//! intervals, capacity bounds at the estimates, and a windowed
//! change-point scan for non-stationarity.
//!
//! # Estimands
//!
//! The trace records Definition 1's accounting as event streams, and
//! the binomial likelihoods factorise per event class:
//!
//! * **`P_d`** — probability a committed symbol is destroyed before
//!   delivery. Each `send` is a Bernoulli trial; each `del` a
//!   success. MLE: `deletions / sends`.
//! * **`P_i`** — probability a delivered symbol is spurious. Each
//!   delivery (`recv` or `ins`) is a Bernoulli trial; each `ins` a
//!   success. MLE: `insertions / (insertions + receipts)`.
//!
//! These are the per-attempt rates the §3 campaign statistics report
//! (overwrites per write, stale reads per read) — *not* the per-use
//! rates of a raw [`nsc_channel::event::EventLog`], which normalise
//! by channel uses instead.

use crate::error::TraceError;
use crate::format::{TraceEvent, TraceEventKind};
use nsc_core::bounds::{converted_channel_capacity, erasure_upper_bound, theorem5_lower_bound};
use nsc_core::engine::{par_map, EngineConfig};
use nsc_info::stats::{wilson_interval, ProportionInterval};
use serde::{Deserialize, Serialize};

/// 95% two-sided z quantile, matching
/// [`nsc_channel::stats::DEFAULT_Z`].
const Z_95: f64 = nsc_channel::stats::DEFAULT_Z;

/// 95% quantile of the χ²₁ distribution: the deviance threshold of a
/// two-sided likelihood-ratio test at α = 0.05 (`Z_95²`).
pub const LR_CHI2_95: f64 = 3.841_458_820_694_124;

/// Events per change-point block: the finest granularity at which the
/// stationarity scan can localise a parameter shift.
pub const DEFAULT_BLOCK_EVENTS: u64 = 1024;

/// Default number of windows the change-point scan compares.
pub const DEFAULT_WINDOWS: usize = 8;

/// Default ceiling on the number of change-point blocks an
/// [`InferenceBuilder`] keeps before compacting (merging adjacent
/// block pairs and doubling the block granularity). Bounds the
/// builder's memory at `O(max_blocks)` regardless of trace length —
/// the property the `nsc serve` per-stream estimators rely on.
pub const DEFAULT_MAX_BLOCKS: usize = 4096;

/// Family-wise false-alarm rate of the stationarity scan, split
/// Bonferroni-style across its `2 × windows` tests.
pub const SCAN_FAMILY_ALPHA: f64 = 0.01;

/// Tallies of each event class in a trace (or a slice of one).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct EventCounts {
    /// Total events.
    pub events: u64,
    /// `send` events (committed symbols).
    pub sends: u64,
    /// `del` events (commits destroyed before delivery).
    pub deletions: u64,
    /// `recv` events (genuine deliveries).
    pub receipts: u64,
    /// `ins` events (spurious deliveries).
    pub insertions: u64,
    /// `ack` events (feedback publications).
    pub acks: u64,
}

impl EventCounts {
    /// Tallies one event.
    // nsc-lint: hot
    pub fn observe(&mut self, event: &TraceEvent) {
        self.events += 1;
        match event.kind {
            TraceEventKind::Send(_) => self.sends += 1,
            TraceEventKind::Recv(_) => self.receipts += 1,
            TraceEventKind::Delete(_) => self.deletions += 1,
            TraceEventKind::Insert(_) => self.insertions += 1,
            TraceEventKind::Ack => self.acks += 1,
        }
    }

    /// Merges another tally into this one.
    pub fn merge(&mut self, other: &EventCounts) {
        self.events += other.events;
        self.sends += other.sends;
        self.deletions += other.deletions;
        self.receipts += other.receipts;
        self.insertions += other.insertions;
        self.acks += other.acks;
    }

    /// Deliveries: the `P_i` denominator (`recv + ins`).
    #[must_use]
    pub fn deliveries(&self) -> u64 {
        self.receipts + self.insertions
    }
}

/// Maximum-likelihood estimate of one Bernoulli rate with two 95%
/// confidence intervals.
///
/// The Wilson score interval is the closed form the rest of the
/// workspace reports; the likelihood-ratio interval inverts the
/// binomial deviance (`G² ≤ χ²₁(0.95)`) and is asymptotically
/// equivalent but slightly tighter off-centre. Disagreement between
/// the two is itself a small-sample warning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RateEstimate {
    /// Observed successes.
    pub successes: u64,
    /// Observed Bernoulli trials.
    pub trials: u64,
    /// Maximum-likelihood point estimate `successes / trials`.
    pub mle: f64,
    /// 95% Wilson score interval.
    pub wilson: ProportionInterval,
    /// 95% likelihood-ratio interval.
    pub likelihood_ratio: ProportionInterval,
}

impl RateEstimate {
    /// Estimates a rate from `successes` out of `trials`.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Inference`] when `trials` is zero (the
    /// `0/0` degenerate shape: no Bernoulli evidence at all, so the
    /// MLE is undefined and must not silently become `NaN`) or when
    /// `successes > trials`.
    pub fn from_counts(successes: u64, trials: u64) -> Result<Self, TraceError> {
        if trials == 0 {
            return Err(TraceError::Inference(format!(
                "cannot estimate a rate from zero trials ({successes}/0 is undefined)"
            )));
        }
        let wilson = wilson_interval(successes, trials, Z_95)
            .map_err(|e| TraceError::Inference(e.to_string()))?;
        Ok(RateEstimate {
            successes,
            trials,
            mle: successes as f64 / trials as f64,
            wilson,
            likelihood_ratio: likelihood_ratio_interval(successes, trials),
        })
    }
}

/// Binomial log-likelihood `k·ln(p) + (n−k)·ln(1−p)` (constants
/// dropped), with the `0·ln(0) = 0` convention.
fn log_likelihood(k: u64, n: u64, p: f64) -> f64 {
    let mut ll = 0.0;
    if k > 0 {
        ll += k as f64 * p.ln();
    }
    if n > k {
        ll += (n - k) as f64 * (1.0 - p).ln();
    }
    ll
}

/// 95% likelihood-ratio interval: the set of `p` whose deviance
/// `2·(ℓ(p̂) − ℓ(p))` stays below [`LR_CHI2_95`], found by bisection
/// on each side of the MLE (the deviance is monotone away from it).
fn likelihood_ratio_interval(k: u64, n: u64) -> ProportionInterval {
    let mle = k as f64 / n as f64;
    let ll_hat = log_likelihood(k, n, mle);
    let inside = |p: f64| 2.0 * (ll_hat - log_likelihood(k, n, p)) <= LR_CHI2_95;

    // Bisect [lo_in, lo_out] down to the boundary. 64 halvings reach
    // f64 resolution from any starting bracket.
    let bisect = |mut p_in: f64, mut p_out: f64| {
        for _ in 0..64 {
            let mid = 0.5 * (p_in + p_out);
            if inside(mid) {
                p_in = mid;
            } else {
                p_out = mid;
            }
        }
        0.5 * (p_in + p_out)
    };

    let lower = if k == 0 { 0.0 } else { bisect(mle, 0.0) };
    let upper = if k == n { 1.0 } else { bisect(mle, 1.0) };
    ProportionInterval {
        estimate: mle,
        lower,
        upper,
    }
}

/// Inverse standard-normal CDF (Acklam's rational approximation,
/// relative error < 1.2e-9). Used to turn the Bonferroni-corrected
/// per-test α of the stationarity scan into a |z| threshold.
fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile of p = {p}");
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383577518672690e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -normal_quantile(1.0 - p)
    }
}

/// Two-proportion z statistic for `k1/n1` vs `k2/n2` under the pooled
/// null (0 when either sample is empty or the pooled rate is
/// degenerate, i.e. no evidence either way).
fn two_proportion_z(k1: u64, n1: u64, k2: u64, n2: u64) -> f64 {
    if n1 == 0 || n2 == 0 {
        return 0.0;
    }
    let p1 = k1 as f64 / n1 as f64;
    let p2 = k2 as f64 / n2 as f64;
    let pool = (k1 + k2) as f64 / (n1 + n2) as f64;
    let var = pool * (1.0 - pool) * (1.0 / n1 as f64 + 1.0 / n2 as f64);
    if var <= 0.0 {
        return 0.0;
    }
    (p1 - p2) / var.sqrt()
}

/// One window of the change-point scan.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WindowStats {
    /// Window index (time order).
    pub window: usize,
    /// Event tallies inside the window.
    pub counts: EventCounts,
    /// Window-local deletion rate (`NaN`-free: 0 when no sends).
    pub p_d: f64,
    /// Window-local insertion rate (0 when no deliveries).
    pub p_i: f64,
    /// z statistic of the window's `P_d` against the rest of the
    /// trace pooled.
    pub z_p_d: f64,
    /// z statistic of the window's `P_i` against the rest pooled.
    pub z_p_i: f64,
}

/// Result of the windowed change-point scan.
///
/// The trace is cut into [`DEFAULT_BLOCK_EVENTS`]-event blocks during
/// the streaming pass, the blocks are regrouped into at most
/// `windows` contiguous windows, and each window's `P_d` and `P_i`
/// are tested against the rest of the trace with a two-proportion z
/// test. A window whose |z| exceeds the Bonferroni-corrected
/// [`threshold`](StationarityScan::threshold) flags the trace as
/// non-stationary: the MLE then describes a *mixture* of regimes, and
/// its confidence intervals are too narrow to trust.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StationarityScan {
    /// Per-window statistics, in time order.
    pub windows: Vec<WindowStats>,
    /// |z| threshold: the two-sided normal quantile at
    /// [`SCAN_FAMILY_ALPHA`] split across `2 × windows` tests.
    pub threshold: f64,
    /// Indices of windows exceeding the threshold on either rate.
    pub flagged: Vec<usize>,
    /// `true` when no window is flagged.
    pub stationary: bool,
}

/// Complete inference result for one trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceInference {
    /// Whole-trace event tallies.
    pub counts: EventCounts,
    /// Deletion probability: MLE `deletions / sends` with CIs.
    pub p_d: RateEstimate,
    /// Insertion probability: MLE `insertions / deliveries` with CIs.
    pub p_i: RateEstimate,
    /// Windowed change-point scan.
    pub stationarity: StationarityScan,
}

/// Streaming inference accumulator.
///
/// Feed events in trace order via
/// [`observe`](InferenceBuilder::observe); the builder keeps the
/// whole-trace tallies plus per-block tallies for the change-point
/// scan — never the events themselves. Memory is **bounded**: when
/// the block list would exceed `max_blocks`
/// ([`DEFAULT_MAX_BLOCKS`] by default), adjacent blocks are merged
/// pairwise and the block granularity doubles, so arbitrarily long
/// streams fit in `O(max_blocks)` space. The builder's state is a
/// pure function of the event sequence — chunking, connection
/// framing, and thread counts cannot change it — which is what makes
/// the `nsc serve` online path bit-identical to batch
/// [`infer_events`].
#[derive(Debug, Clone)]
pub struct InferenceBuilder {
    block_events: u64,
    max_blocks: usize,
    totals: EventCounts,
    blocks: Vec<EventCounts>,
}

impl Default for InferenceBuilder {
    fn default() -> Self {
        InferenceBuilder::new()
    }
}

impl InferenceBuilder {
    /// A builder with the default block granularity
    /// ([`DEFAULT_BLOCK_EVENTS`]) and block ceiling
    /// ([`DEFAULT_MAX_BLOCKS`]).
    #[must_use]
    pub fn new() -> Self {
        InferenceBuilder::with_block_events(DEFAULT_BLOCK_EVENTS)
    }

    /// A builder cutting change-point blocks every `block_events`
    /// events (`0` is treated as `1`), with the default block
    /// ceiling.
    #[must_use]
    pub fn with_block_events(block_events: u64) -> Self {
        InferenceBuilder::with_limits(block_events, DEFAULT_MAX_BLOCKS)
    }

    /// A builder with an explicit block granularity **and** block
    /// ceiling (`0` is treated as `1` for both; the ceiling is
    /// rounded up to an even count so pairwise compaction always
    /// makes progress).
    #[must_use]
    pub fn with_limits(block_events: u64, max_blocks: usize) -> Self {
        InferenceBuilder {
            block_events: block_events.max(1),
            max_blocks: max_blocks.max(2),
            totals: EventCounts::default(),
            blocks: Vec::new(),
        }
    }

    /// Tallies one event.
    // nsc-lint: hot
    pub fn observe(&mut self, event: &TraceEvent) {
        if self
            .blocks
            .last()
            .is_none_or(|b| b.events >= self.block_events)
        {
            if self.blocks.len() >= self.max_blocks {
                self.compact();
            }
            self.blocks.push(EventCounts::default());
        }
        self.blocks
            .last_mut()
            .expect("block pushed above")
            .observe(event);
        self.totals.observe(event);
    }

    /// Merges adjacent block pairs in place and doubles the block
    /// granularity: the bounded-memory step. An odd trailing block is
    /// kept as-is (it simply fills to the new granularity).
    fn compact(&mut self) {
        let len = self.blocks.len();
        let mut write = 0;
        let mut read = 0;
        while read < len {
            let mut merged = self.blocks[read];
            if read + 1 < len {
                merged.merge(&self.blocks[read + 1]);
            }
            self.blocks[write] = merged;
            write += 1;
            read += 2;
        }
        self.blocks.truncate(write);
        self.block_events = self.block_events.saturating_mul(2);
    }

    /// Events observed so far.
    #[must_use]
    pub fn events(&self) -> u64 {
        self.totals.events
    }

    /// Whole-stream tallies observed so far.
    #[must_use]
    pub fn counts(&self) -> &EventCounts {
        &self.totals
    }

    /// Number of change-point blocks currently held (bounded by the
    /// builder's block ceiling).
    #[must_use]
    pub fn blocks_held(&self) -> usize {
        self.blocks.len()
    }

    /// Runs the inference over the events observed *so far* without
    /// consuming the builder: estimates both rates and runs the
    /// change-point scan over at most `windows` windows, fanning the
    /// per-window tests across `threads` workers (`0` = all cores;
    /// the scan is deterministic at any thread count). This is the
    /// `nsc serve` snapshot path — the builder keeps accumulating
    /// afterwards.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Inference`] when the stream so far
    /// contains no `send` events (no `P_d` evidence) or no deliveries
    /// (no `P_i` evidence) — the `0/0` degenerate shapes that must
    /// never silently become `NaN` estimates.
    pub fn infer(&self, windows: usize, threads: usize) -> Result<TraceInference, TraceError> {
        let totals = self.totals;
        if totals.sends == 0 {
            return Err(TraceError::Inference(
                "no send events: cannot estimate P_d".to_owned(),
            ));
        }
        if totals.deliveries() == 0 {
            return Err(TraceError::Inference(
                "no recv/ins events: cannot estimate P_i".to_owned(),
            ));
        }
        let p_d = RateEstimate::from_counts(totals.deletions, totals.sends)?;
        let p_i = RateEstimate::from_counts(totals.insertions, totals.deliveries())?;
        let stationarity = scan_windows(&self.blocks, &totals, windows, threads)?;
        Ok(TraceInference {
            counts: totals,
            p_d,
            p_i,
            stationarity,
        })
    }

    /// Finishes the pass: [`infer`](InferenceBuilder::infer), by
    /// value. Kept for callers that are done streaming.
    ///
    /// # Errors
    ///
    /// Same conditions as [`infer`](InferenceBuilder::infer).
    pub fn finish(self, windows: usize, threads: usize) -> Result<TraceInference, TraceError> {
        self.infer(windows, threads)
    }
}

/// Regroups blocks into at most `windows` contiguous windows and
/// tests each against the rest of the trace.
fn scan_windows(
    blocks: &[EventCounts],
    totals: &EventCounts,
    windows: usize,
    threads: usize,
) -> Result<StationarityScan, TraceError> {
    let wanted = windows.max(1).min(blocks.len().max(1));
    let mut grouped: Vec<EventCounts> = Vec::with_capacity(wanted);
    if blocks.is_empty() {
        grouped.push(EventCounts::default());
    } else {
        // Spread `blocks` across `wanted` windows as evenly as the
        // block granularity allows (first windows take the remainder).
        let per = blocks.len() / wanted;
        let extra = blocks.len() % wanted;
        let mut start = 0;
        for w in 0..wanted {
            let len = per + usize::from(w < extra);
            let mut acc = EventCounts::default();
            for b in &blocks[start..start + len] {
                acc.merge(b);
            }
            grouped.push(acc);
            start += len;
        }
    }

    let tests = 2 * grouped.len();
    let threshold = normal_quantile(1.0 - SCAN_FAMILY_ALPHA / (2.0 * tests as f64));
    let config = EngineConfig::seeded(0).with_threads(threads);
    let stats = par_map(&config, &grouped, |w, counts| {
        let rest_sends = totals.sends - counts.sends;
        let rest_dels = totals.deletions - counts.deletions;
        let rest_deliv = totals.deliveries() - counts.deliveries();
        let rest_ins = totals.insertions - counts.insertions;
        WindowStats {
            window: w,
            counts: *counts,
            p_d: ratio(counts.deletions, counts.sends),
            p_i: ratio(counts.insertions, counts.deliveries()),
            z_p_d: two_proportion_z(counts.deletions, counts.sends, rest_dels, rest_sends),
            z_p_i: two_proportion_z(counts.insertions, counts.deliveries(), rest_ins, rest_deliv),
        }
    })
    .map_err(|e| TraceError::Inference(e.to_string()))?;
    let flagged: Vec<usize> = stats
        .iter()
        .filter(|s| s.z_p_d.abs() > threshold || s.z_p_i.abs() > threshold)
        .map(|s| s.window)
        .collect();
    Ok(StationarityScan {
        stationary: flagged.is_empty(),
        windows: stats,
        threshold,
        flagged,
    })
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// A capacity figure at the MLE point with its 95% confidence range
/// (Wilson intervals propagated through the bound formula).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CapacityInterval {
    /// Bound evaluated at the point estimates.
    pub estimate: f64,
    /// Bound at the pessimistic CI corner.
    pub lower: f64,
    /// Bound at the optimistic CI corner.
    pub upper: f64,
}

/// Capacity bounds (bits per symbol slot) implied by an inference,
/// for a `bits`-wide channel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceBounds {
    /// Symbol width the bounds are computed for.
    pub bits: u32,
    /// Theorem 1/4 erasure upper bound `N·(1 − P_d)`, decreasing in
    /// `P_d` (so its CI comes from `P_d`'s interval reversed).
    pub upper_bound: CapacityInterval,
    /// Converted-channel capacity `C_conv` at the measured `P_i`.
    pub conv: CapacityInterval,
    /// Theorem 5 constructive lower bound
    /// `(1 − P_d)/(1 − P_i) · C_conv`; `None` when the point
    /// estimates fall outside the theorem's domain (`p_i < 1`,
    /// `p_d + p_i ≤ 1`). CI corners outside the domain clamp to the
    /// trivial bound 0.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub lower_bound: Option<CapacityInterval>,
}

/// Evaluates the paper's capacity bounds at an inference's point
/// estimates, propagating the Wilson 95% intervals through each
/// (monotone) bound formula.
///
/// # Errors
///
/// Returns [`TraceError::Inference`] when `bits` is outside the
/// supported alphabet range.
pub fn capacity_bounds_with_ci(
    bits: u32,
    inference: &TraceInference,
) -> Result<TraceBounds, TraceError> {
    let numeric = |e: nsc_core::CoreError| TraceError::Inference(e.to_string());
    let p_d = inference.p_d.wilson;
    let p_i = inference.p_i.wilson;

    // N·(1 − p_d) decreases in p_d: CI endpoints swap.
    let upper_bound = CapacityInterval {
        estimate: erasure_upper_bound(bits, p_d.estimate)
            .map_err(numeric)?
            .value(),
        lower: erasure_upper_bound(bits, p_d.upper)
            .map_err(numeric)?
            .value(),
        upper: erasure_upper_bound(bits, p_d.lower)
            .map_err(numeric)?
            .value(),
    };
    // C_conv decreases in p_i: same reversal.
    let conv = CapacityInterval {
        estimate: converted_channel_capacity(bits, p_i.estimate)
            .map_err(numeric)?
            .value(),
        lower: converted_channel_capacity(bits, p_i.upper)
            .map_err(numeric)?
            .value(),
        upper: converted_channel_capacity(bits, p_i.lower)
            .map_err(numeric)?
            .value(),
    };
    // Theorem 5 decreases in both rates; a pessimistic corner outside
    // the domain means the theorem guarantees nothing there → 0.
    let lower_bound = theorem5_lower_bound(bits, p_d.estimate, p_i.estimate)
        .ok()
        .map(|point| {
            let at = |pd: f64, pi: f64| {
                theorem5_lower_bound(bits, pd, pi)
                    .map(|b| b.value())
                    .unwrap_or(0.0)
            };
            CapacityInterval {
                estimate: point.value(),
                lower: at(p_d.upper, p_i.upper),
                upper: at(p_d.lower, p_i.lower),
            }
        });
    Ok(TraceBounds {
        bits,
        upper_bound,
        conv,
        lower_bound,
    })
}

/// Runs the whole inference over an iterator of events (e.g. a
/// [`crate::TraceReader`]), streaming through an
/// [`InferenceBuilder`].
///
/// # Errors
///
/// Propagates event-stream errors and the same conditions as
/// [`InferenceBuilder::finish`].
pub fn infer_events<I>(
    events: I,
    windows: usize,
    threads: usize,
) -> Result<TraceInference, TraceError>
where
    I: IntoIterator<Item = Result<TraceEvent, TraceError>>,
{
    let mut builder = InferenceBuilder::new();
    for event in events {
        builder.observe(&event?);
    }
    builder.finish(windows, threads)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(tick: u64, kind: TraceEventKind) -> TraceEvent {
        TraceEvent::new(tick, kind)
    }

    /// A deterministic synthetic trace: exactly `dels` of the `sends`
    /// commits deleted and `ins` of the deliveries spurious, spread
    /// evenly (Bresenham-style) so the trace is stationary.
    fn synthetic(sends: u64, dels: u64, recvs: u64, ins: u64) -> Vec<TraceEvent> {
        let spread = |i: u64, hits: u64, total: u64| (i * hits) / total != ((i + 1) * hits) / total;
        let mut events = Vec::new();
        let mut tick = 0;
        for i in 0..sends {
            events.push(event(tick, TraceEventKind::Send(1)));
            if spread(i, dels, sends) {
                events.push(event(tick, TraceEventKind::Delete(1)));
            }
            tick += 1;
        }
        let deliveries = recvs + ins;
        for i in 0..deliveries {
            let kind = if spread(i, ins, deliveries) {
                TraceEventKind::Insert(0)
            } else {
                TraceEventKind::Recv(1)
            };
            events.push(event(tick, kind));
            tick += 1;
        }
        events
    }

    #[test]
    fn mle_matches_construction() {
        let events = synthetic(1000, 250, 600, 200);
        let inf = infer_events(events.into_iter().map(Ok), 4, 1).unwrap();
        assert_eq!(inf.counts.sends, 1000);
        assert_eq!(inf.counts.deliveries(), 800);
        assert!((inf.p_d.mle - 0.25).abs() < 1e-12);
        assert!((inf.p_i.mle - 0.25).abs() < 1e-12);
        assert!(inf.p_d.wilson.contains(0.25));
        assert!(inf.p_d.likelihood_ratio.lower < 0.25 && 0.25 < inf.p_d.likelihood_ratio.upper);
    }

    #[test]
    fn lr_and_wilson_intervals_agree_asymptotically() {
        let r = RateEstimate::from_counts(300, 1000).unwrap();
        assert!((r.likelihood_ratio.lower - r.wilson.lower).abs() < 0.005);
        assert!((r.likelihood_ratio.upper - r.wilson.upper).abs() < 0.005);
        // Degenerate corners stay in [0, 1].
        let zero = RateEstimate::from_counts(0, 50).unwrap();
        assert_eq!(zero.likelihood_ratio.lower, 0.0);
        assert!(zero.likelihood_ratio.upper > 0.0 && zero.likelihood_ratio.upper < 0.2);
        let full = RateEstimate::from_counts(50, 50).unwrap();
        assert_eq!(full.likelihood_ratio.upper, 1.0);
        assert!(full.likelihood_ratio.lower > 0.8);
        assert!(RateEstimate::from_counts(1, 0).is_err());
    }

    #[test]
    fn normal_quantile_matches_known_points() {
        assert!((normal_quantile(0.975) - Z_95).abs() < 1e-8);
        assert!((normal_quantile(0.5)).abs() < 1e-12);
        assert!((normal_quantile(0.025) + Z_95).abs() < 1e-8);
        // Deep-tail branch.
        assert!(normal_quantile(1e-6) < -4.0);
    }

    #[test]
    fn stationary_trace_passes_scan() {
        let events = synthetic(20_000, 5_000, 12_000, 3_000);
        let inf = infer_events(events.into_iter().map(Ok), DEFAULT_WINDOWS, 1).unwrap();
        // The construction is deterministic round-robin, but sends
        // and deliveries are phase-separated, so scan windows see
        // different mixes; rates inside each class are constant, so
        // no window deviates.
        assert!(
            inf.stationarity.stationary,
            "{:?}",
            inf.stationarity.flagged
        );
        assert!(inf.stationarity.threshold > Z_95);
    }

    #[test]
    fn change_point_is_flagged() {
        // First half: P_d = 0; second half: P_d = 0.9.
        let mut events = synthetic(20_000, 0, 100, 0);
        let last = events.last().map_or(0, |e| e.tick);
        events.extend(
            synthetic(20_000, 18_000, 100, 0)
                .into_iter()
                .map(|e| TraceEvent::new(e.tick + last + 1, e.kind)),
        );
        let inf = infer_events(events.into_iter().map(Ok), DEFAULT_WINDOWS, 1).unwrap();
        assert!(!inf.stationarity.stationary);
        assert!(!inf.stationarity.flagged.is_empty());
    }

    #[test]
    fn scan_is_thread_invariant() {
        let events = synthetic(50_000, 10_000, 30_000, 5_000);
        let serial = infer_events(events.clone().into_iter().map(Ok), 8, 1).unwrap();
        let parallel = infer_events(events.into_iter().map(Ok), 8, 4).unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn bounds_propagate_intervals() {
        let events = synthetic(10_000, 2_000, 7_000, 1_000);
        let inf = infer_events(events.into_iter().map(Ok), 4, 1).unwrap();
        let b = capacity_bounds_with_ci(3, &inf).unwrap();
        assert!((b.upper_bound.estimate - 3.0 * 0.8).abs() < 1e-9);
        assert!(b.upper_bound.lower < b.upper_bound.estimate);
        assert!(b.upper_bound.upper > b.upper_bound.estimate);
        let t5 = b.lower_bound.expect("inside Theorem 5 domain");
        assert!(t5.lower <= t5.estimate && t5.estimate <= t5.upper);
        assert!(t5.estimate > 0.0);
        assert!(t5.estimate <= b.upper_bound.estimate);
        assert!(b.conv.estimate <= 3.0);
    }

    #[test]
    fn empty_evidence_is_an_inference_error() {
        let only_acks = vec![event(0, TraceEventKind::Ack)];
        let err = infer_events(only_acks.into_iter().map(Ok), 4, 1).unwrap_err();
        assert!(matches!(err, TraceError::Inference(_)));
        let no_deliveries = vec![event(0, TraceEventKind::Send(1))];
        let err = infer_events(no_deliveries.into_iter().map(Ok), 4, 1).unwrap_err();
        assert!(err.to_string().contains("P_i"), "{err}");
    }

    #[test]
    fn zero_trials_is_a_typed_error_not_nan() {
        // The 0/0 shape must surface as TraceError::Inference — never
        // as a NaN estimate that serde_json would render as null.
        let err = RateEstimate::from_counts(0, 0).unwrap_err();
        assert!(matches!(err, TraceError::Inference(_)));
        assert!(err.to_string().contains("zero trials"), "{err}");
    }

    #[test]
    fn builder_infer_is_nonconsuming_and_matches_finish() {
        let events = synthetic(2_000, 500, 1_200, 300);
        let mut builder = InferenceBuilder::new();
        for e in &events {
            builder.observe(e);
        }
        let snapshot = builder.infer(4, 1).unwrap();
        // Builder still usable after the snapshot.
        assert_eq!(builder.events(), snapshot.counts.events);
        assert_eq!(builder.counts().sends, 2_000);
        let finished = builder.finish(4, 1).unwrap();
        assert_eq!(snapshot, finished);
    }

    #[test]
    fn builder_infer_reports_degenerate_streams() {
        let mut builder = InferenceBuilder::new();
        assert!(matches!(
            builder.infer(4, 1).unwrap_err(),
            TraceError::Inference(_)
        ));
        builder.observe(&event(0, TraceEventKind::Send(1)));
        let err = builder.infer(4, 1).unwrap_err();
        assert!(err.to_string().contains("P_i"), "{err}");
        builder.observe(&event(1, TraceEventKind::Recv(1)));
        assert!(builder.infer(4, 1).is_ok());
    }

    #[test]
    fn compaction_bounds_blocks_and_preserves_inference() {
        // Tiny limits force many compaction rounds: thousands of
        // single-event blocks squeezed into at most 8 held blocks.
        let events = synthetic(4_000, 1_000, 2_400, 600);
        let mut bounded = InferenceBuilder::with_limits(1, 8);
        for e in &events {
            bounded.observe(e);
        }
        assert!(bounded.blocks_held() <= 8, "{}", bounded.blocks_held());
        // Totals — and therefore the MLEs and CIs — are unaffected by
        // compaction; only scan granularity coarsens.
        let inf = bounded.infer(4, 1).unwrap();
        let batch = infer_events(events.into_iter().map(Ok), 4, 1).unwrap();
        assert_eq!(inf.counts, batch.counts);
        assert_eq!(inf.p_d, batch.p_d);
        assert_eq!(inf.p_i, batch.p_i);
    }

    #[test]
    fn default_limits_match_batch_exactly() {
        // At default limits the serve-path builder is the batch path:
        // byte-identical JSON, the replay-oracle property.
        let events = synthetic(5_000, 1_250, 3_000, 750);
        let mut builder = InferenceBuilder::new();
        for e in &events {
            builder.observe(e);
        }
        let online = builder.infer(DEFAULT_WINDOWS, 1).unwrap();
        let batch = infer_events(events.into_iter().map(Ok), DEFAULT_WINDOWS, 1).unwrap();
        assert_eq!(
            serde_json::to_string(&online).unwrap(),
            serde_json::to_string(&batch).unwrap()
        );
    }
}
