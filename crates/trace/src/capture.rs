//! Capture bridges: turning the workspace's ground-truth event
//! sources into `nsc-trace/v1` event streams.
//!
//! Three sources feed the format:
//!
//! * the mechanistic simulators via [`nsc_core::sim::SimObserver`]
//!   (single runs through [`trace_event`], whole campaigns through
//!   [`events_from_trials`]),
//! * the abstract Definition 1 channel via
//!   [`nsc_channel::event::EventLog`] ([`events_from_log`]),
//! * real scheduler traces via [`nsc_sched::Trace`]
//!   ([`capture_sched_trace`]), replayed through the unsynchronized
//!   runner so every quantum becomes an observable channel event.

use crate::error::TraceError;
use crate::format::{TraceEvent, TraceEventKind};
use nsc_channel::alphabet::Symbol;
use nsc_channel::event::{ChannelEvent, EventLog};
use nsc_core::engine::TrialTrace;
use nsc_core::sim::unsync::UnsyncOutcome;
use nsc_core::sim::{
    unsync::run_unsynchronized_observed, EventRecorder, SimEvent, SimEventKind, TraceSchedule,
};
use nsc_sched::covert::ops_from_trace;
use nsc_sched::Trace;

/// Converts one simulator event to its wire form.
#[must_use]
pub fn trace_event(event: &SimEvent) -> TraceEvent {
    let kind = match event.kind {
        SimEventKind::Send(s) => TraceEventKind::Send(s.index()),
        SimEventKind::Recv(s) => TraceEventKind::Recv(s.index()),
        SimEventKind::Delete(s) => TraceEventKind::Delete(s.index()),
        SimEventKind::Insert(s) => TraceEventKind::Insert(s.index()),
        SimEventKind::Ack => TraceEventKind::Ack,
    };
    TraceEvent::new(event.tick, kind)
}

/// Flattens a campaign's per-trial captures into one event stream.
///
/// Trial ticks are local (each trial restarts at 0), so trials are
/// concatenated with a cumulative tick offset — one tick of dead air
/// between trials — keeping the stream's timestamps globally
/// non-decreasing as the format requires.
#[must_use]
pub fn events_from_trials(trials: &[TrialTrace]) -> Vec<TraceEvent> {
    let mut events = Vec::with_capacity(trials.iter().map(|t| t.events.len()).sum());
    let mut offset: u64 = 0;
    for trial in trials {
        let mut last = 0;
        for event in &trial.events {
            let mut wire = trace_event(event);
            last = wire.tick;
            wire.tick += offset;
            events.push(wire);
        }
        offset += last + 1;
    }
    events
}

/// Converts a Definition 1 event log to a trace stream, one tick per
/// channel use.
///
/// * `Deletion { symbol }` → `send` + `del` (the symbol was committed
///   and destroyed),
/// * `Insertion { symbol }` → `ins` (delivered but never committed),
/// * `Transmission { sent, received }` → `send` + `recv` (a
///   substitution delivers `received ≠ sent`; v1 has no substitution
///   kind, so the corrupted delivery still counts as a receipt).
///
/// Note the resulting per-attempt rates (`del/send`, `ins` per
/// delivery) deliberately differ from [`EventLog`]'s per-*use*
/// rates — see [`crate::infer`] for the estimand definitions.
#[must_use]
pub fn events_from_log(log: &EventLog) -> Vec<TraceEvent> {
    let mut events = Vec::with_capacity(2 * log.uses());
    for (tick, use_) in log.events().iter().enumerate() {
        let tick = tick as u64;
        match *use_ {
            ChannelEvent::Deletion { symbol } => {
                events.push(TraceEvent::new(tick, TraceEventKind::Send(symbol.index())));
                events.push(TraceEvent::new(
                    tick,
                    TraceEventKind::Delete(symbol.index()),
                ));
            }
            ChannelEvent::Insertion { symbol } => {
                events.push(TraceEvent::new(
                    tick,
                    TraceEventKind::Insert(symbol.index()),
                ));
            }
            ChannelEvent::Transmission { sent, received } => {
                events.push(TraceEvent::new(tick, TraceEventKind::Send(sent.index())));
                events.push(TraceEvent::new(
                    tick,
                    TraceEventKind::Recv(received.index()),
                ));
            }
        }
    }
    events
}

/// Replays a scheduler trace as an unsynchronized covert-channel run
/// and captures its channel events: every quantum the covert sender
/// (receiver) ran becomes one write (read) opportunity, exactly as
/// [`nsc_sched::covert`] measures `(P_d, P_i)`.
///
/// Returns the run outcome together with the captured events; ticks
/// are operation indices into the covert pair's schedule.
///
/// # Errors
///
/// Returns [`TraceError::Inference`] when the trace grants the covert
/// pair no quanta or the message is empty (the runner cannot start).
pub fn capture_sched_trace(
    trace: &Trace,
    message: &[Symbol],
) -> Result<(UnsyncOutcome, Vec<TraceEvent>), TraceError> {
    let ops = ops_from_trace(trace);
    if ops.is_empty() {
        return Err(TraceError::Inference(
            "schedule trace grants the covert pair no quanta".to_owned(),
        ));
    }
    let mut schedule = TraceSchedule::new(ops);
    let mut recorder = EventRecorder::default();
    let outcome = run_unsynchronized_observed(message, &mut schedule, usize::MAX, &mut recorder)
        .map_err(|e| TraceError::Inference(e.to_string()))?;
    let events = recorder.events.iter().map(trace_event).collect();
    Ok((outcome, events))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer::EventCounts;
    use nsc_channel::alphabet::Alphabet;
    use nsc_channel::di::{DeletionInsertionChannel, DiParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sim_events_map_one_to_one() {
        let sym = Symbol::from_index(3);
        let cases = [
            (SimEventKind::Send(sym), TraceEventKind::Send(3)),
            (SimEventKind::Recv(sym), TraceEventKind::Recv(3)),
            (SimEventKind::Delete(sym), TraceEventKind::Delete(3)),
            (SimEventKind::Insert(sym), TraceEventKind::Insert(3)),
            (SimEventKind::Ack, TraceEventKind::Ack),
        ];
        for (kind, wire) in cases {
            let got = trace_event(&SimEvent { tick: 7, kind });
            assert_eq!(got, TraceEvent::new(7, wire));
        }
    }

    #[test]
    fn trial_concatenation_keeps_ticks_monotone() {
        let trials = vec![
            TrialTrace {
                trial: 0,
                events: vec![
                    SimEvent {
                        tick: 0,
                        kind: SimEventKind::Send(Symbol::from_index(1)),
                    },
                    SimEvent {
                        tick: 4,
                        kind: SimEventKind::Recv(Symbol::from_index(1)),
                    },
                ],
            },
            TrialTrace {
                trial: 1,
                events: vec![SimEvent {
                    tick: 0,
                    kind: SimEventKind::Ack,
                }],
            },
        ];
        let events = events_from_trials(&trials);
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].tick, 0);
        assert_eq!(events[1].tick, 4);
        // Second trial starts one tick after the first ended.
        assert_eq!(events[2].tick, 5);
        assert!(events.windows(2).all(|w| w[0].tick <= w[1].tick));
    }

    #[test]
    fn event_log_bridge_preserves_counts() {
        let ch = DeletionInsertionChannel::new(
            Alphabet::binary(),
            DiParams::new(0.3, 0.2, 0.0).unwrap(),
        );
        let mut rng = StdRng::seed_from_u64(11);
        let input = vec![Symbol::from_index(1); 20_000];
        let out = ch.transmit(&input, &mut rng);
        let events = events_from_log(&out.events);
        let mut counts = EventCounts::default();
        for e in &events {
            counts.observe(e);
        }
        assert_eq!(counts.deletions, out.events.deletions() as u64);
        assert_eq!(counts.insertions, out.events.insertions() as u64);
        assert_eq!(
            counts.sends,
            (out.events.deletions() + out.events.transmissions()) as u64
        );
        assert_eq!(counts.receipts, out.events.transmissions() as u64);
        assert!(events.windows(2).all(|w| w[0].tick <= w[1].tick));
    }

    #[test]
    fn sched_trace_capture_matches_outcome() {
        use nsc_sched::trace::Quantum;
        use nsc_sched::{Pid, Role};

        // Alternating sender/receiver quanta: a fair round-robin.
        let roles = vec![Role::CovertSender, Role::CovertReceiver];
        let quanta: Vec<Quantum> = (0..200).map(|i| Quantum::Ran(Pid(i % 2))).collect();
        let trace = Trace::new(quanta, roles);
        let message: Vec<Symbol> = (0..50).map(|i| Symbol::from_index(i % 2)).collect();
        let (outcome, events) = capture_sched_trace(&trace, &message).unwrap();
        let mut counts = EventCounts::default();
        for e in &events {
            counts.observe(e);
        }
        assert_eq!(counts.sends, outcome.writes as u64);
        assert_eq!(counts.deletions, outcome.deleted_writes as u64);
        assert_eq!(counts.insertions, outcome.stale_reads as u64);
        assert!(outcome.writes > 0);

        let empty = Trace::new(Vec::new(), Vec::new());
        assert!(capture_sched_trace(&empty, &message).is_err());
    }
}
