//! Channel-trace capture, replay, and parameter inference for
//! non-synchronous covert channels.
//!
//! The paper's estimation recipe (§4.3) needs measured deletion and
//! insertion probabilities. This crate gives those measurements a
//! durable, analysable form — the **`nsc-trace/v1`** on-disk format —
//! and the machinery around it:
//!
//! * [`format`] — the versioned JSONL schema: a [`TraceHeader`] line
//!   (alphabet width, optional tick rate, provenance manifest)
//!   followed by one [`TraceEvent`] per line
//!   (`send`/`recv`/`del`/`ins`/`ack` with tick timestamps).
//! * [`writer`] — [`TraceWriter`], a validating streaming writer that
//!   cannot emit a file its own reader rejects.
//! * [`reader`] — [`TraceReader`], a strict streaming reader with
//!   precise 1-based line/column diagnostics; arbitrarily large
//!   traces parse in constant memory.
//! * [`capture`] — bridges from every ground-truth event source in
//!   the workspace: simulator observers, engine campaigns
//!   ([`events_from_trials`]), Definition 1 event logs
//!   ([`events_from_log`]), and real scheduler traces
//!   ([`capture_sched_trace`]).
//! * [`infer`] — maximum-likelihood `(P_d, P_i)` with Wilson and
//!   likelihood-ratio 95% intervals, capacity bounds (Theorems 1/4
//!   and 5) at the estimates with propagated intervals, and a
//!   windowed change-point scan that flags non-stationary traces.
//!
//! # Round trip
//!
//! ```
//! use nsc_trace::{
//!     infer_events, write_trace, TraceEvent, TraceEventKind, TraceHeader, TraceReader,
//! };
//!
//! // Capture: 4 commits, 1 destroyed, 3 delivered, 1 spurious.
//! let events = vec![
//!     TraceEvent::new(0, TraceEventKind::Send(1)),
//!     TraceEvent::new(1, TraceEventKind::Delete(1)),
//!     TraceEvent::new(2, TraceEventKind::Send(0)),
//!     TraceEvent::new(3, TraceEventKind::Recv(0)),
//!     TraceEvent::new(4, TraceEventKind::Send(1)),
//!     TraceEvent::new(5, TraceEventKind::Recv(1)),
//!     TraceEvent::new(6, TraceEventKind::Insert(1)),
//!     TraceEvent::new(7, TraceEventKind::Send(0)),
//!     TraceEvent::new(8, TraceEventKind::Recv(0)),
//! ];
//! let mut file = Vec::new();
//! write_trace(&mut file, &TraceHeader::new(1), events)?;
//!
//! // Replay + infer: MLE P_d = 1/4, P_i = 1/4.
//! let reader = TraceReader::new(file.as_slice())?;
//! let inference = infer_events(reader, 4, 1)?;
//! assert_eq!(inference.counts.sends, 4);
//! assert!((inference.p_d.mle - 0.25).abs() < 1e-12);
//! assert!((inference.p_i.mle - 0.25).abs() < 1e-12);
//! assert!(inference.p_d.wilson.contains(0.25));
//! # Ok::<(), nsc_trace::TraceError>(())
//! ```

pub mod capture;
pub mod error;
pub mod finite;
pub mod format;
pub mod infer;
pub mod reader;
pub mod writer;

pub use capture::{capture_sched_trace, events_from_log, events_from_trials, trace_event};
pub use error::TraceError;
pub use finite::{check_finite_json, to_finite_value};
pub use format::{TraceEvent, TraceEventKind, TraceHeader, MAX_ALPHABET_BITS, TRACE_SCHEMA};
pub use infer::{
    capacity_bounds_with_ci, infer_events, CapacityInterval, EventCounts, InferenceBuilder,
    RateEstimate, StationarityScan, TraceBounds, TraceInference, WindowStats, DEFAULT_MAX_BLOCKS,
    DEFAULT_WINDOWS,
};
pub use reader::{read_trace, TraceReader};
pub use writer::{write_trace, TraceWriter};
