//! Property tests for the `nsc-trace/v1` format and its estimator.
//!
//! Two laws are pinned here:
//!
//! 1. **Round trip** — any valid (header, events) pair survives
//!    `write_trace` → `TraceReader` byte-exactly: same header, same
//!    events, same count.
//! 2. **Estimator consistency** — on a synthetic trace drawn from
//!    known `(P_d, P_i)`, the MLE equals the sample ratio exactly,
//!    and the truth lands inside a widened (z ≈ 3.89, ~99.99%)
//!    Wilson interval so the property cannot flake. A fixed-seed
//!    companion test pins the paper-facing claim: truth inside the
//!    *reported* 95% intervals.

use nsc_info::stats::wilson_interval;
use nsc_trace::{
    read_trace, write_trace, InferenceBuilder, TraceEvent, TraceEventKind, TraceHeader,
    TraceReader, DEFAULT_WINDOWS,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a valid event stream from raw proptest fuel: tick deltas
/// keep timestamps non-decreasing, symbols are masked into range.
fn assemble(bits: u32, raw: &[(u64, u8, u32)]) -> Vec<TraceEvent> {
    let mask = (1u32 << bits) - 1;
    let mut tick = 0u64;
    raw.iter()
        .map(|&(delta, kind, sym)| {
            tick += delta;
            let sym = sym & mask;
            let kind = match kind {
                0 => TraceEventKind::Send(sym),
                1 => TraceEventKind::Recv(sym),
                2 => TraceEventKind::Delete(sym),
                3 => TraceEventKind::Insert(sym),
                _ => TraceEventKind::Ack,
            };
            TraceEvent::new(tick, kind)
        })
        .collect()
}

/// A stationary synthetic trace with i.i.d. deletions at `p_d` (per
/// send) and insertions at `p_i` (per delivery attempt).
fn draw_trace(rng: &mut StdRng, sends: u64, p_d: f64, p_i: f64) -> Vec<TraceEvent> {
    let mut events = Vec::new();
    let mut tick = 0u64;
    for _ in 0..sends {
        events.push(TraceEvent::new(tick, TraceEventKind::Send(1)));
        tick += 1;
        if rng.gen_bool(p_d) {
            events.push(TraceEvent::new(tick, TraceEventKind::Delete(1)));
        } else if rng.gen_bool(p_i) {
            events.push(TraceEvent::new(tick, TraceEventKind::Insert(0)));
            events.push(TraceEvent::new(tick, TraceEventKind::Recv(1)));
        } else {
            events.push(TraceEvent::new(tick, TraceEventKind::Recv(1)));
        }
        tick += 1;
    }
    events
}

fn infer(events: &[TraceEvent]) -> nsc_trace::TraceInference {
    let mut builder = InferenceBuilder::new();
    for event in events {
        builder.observe(event);
    }
    builder
        .finish(DEFAULT_WINDOWS, 1)
        .expect("evidence present")
}

proptest! {
    #[test]
    fn write_then_read_is_identity(
        bits in 1u32..=8,
        tick_rate in proptest::option::of(0.5f64..1.0e6),
        raw in proptest::collection::vec((0u64..4, 0u8..5, 0u32..=u32::MAX), 0..200),
    ) {
        let mut header = TraceHeader::new(bits);
        if let Some(hz) = tick_rate {
            header = header.with_tick_rate(hz);
        }
        let events = assemble(bits, &raw);

        let mut file = Vec::new();
        let written = write_trace(&mut file, &header, events.clone()).unwrap();
        prop_assert_eq!(written, events.len() as u64);

        let (got_header, got_events) = read_trace(file.as_slice()).unwrap();
        prop_assert_eq!(got_header, header);
        prop_assert_eq!(got_events, events);
    }

    #[test]
    fn reader_iterator_streams_the_same_events(
        bits in 1u32..=8,
        raw in proptest::collection::vec((0u64..4, 0u8..5, 0u32..=u32::MAX), 1..100),
    ) {
        let events = assemble(bits, &raw);
        let mut file = Vec::new();
        write_trace(&mut file, &TraceHeader::new(bits), events.clone()).unwrap();
        let reader = TraceReader::new(file.as_slice()).unwrap();
        let streamed: Result<Vec<_>, _> = reader.collect();
        prop_assert_eq!(streamed.unwrap(), events);
    }

    #[test]
    fn mle_is_the_exact_sample_ratio(
        sends in 1u64..400,
        del_pct in 0u64..=100,
        ins in 0u64..200,
    ) {
        // Deterministic counts: `dels` of `sends` deleted (capped so
        // at least one delivery exists), plus `ins` pure insertions.
        let dels = (sends * del_pct / 100).min(sends - 1);
        let mut events = Vec::new();
        for i in 0..sends {
            let t = 2 * i;
            events.push(TraceEvent::new(t, TraceEventKind::Send(0)));
            if i < dels {
                events.push(TraceEvent::new(t + 1, TraceEventKind::Delete(0)));
            } else {
                events.push(TraceEvent::new(t + 1, TraceEventKind::Recv(0)));
            }
        }
        let base = 2 * sends;
        for j in 0..ins {
            events.push(TraceEvent::new(base + j, TraceEventKind::Insert(0)));
        }

        let inference = infer(&events);
        let receipts = sends - dels;
        prop_assert_eq!(inference.counts.sends, sends);
        prop_assert_eq!(inference.counts.deletions, dels);
        let expect_p_d = dels as f64 / sends as f64;
        let expect_p_i = ins as f64 / (ins + receipts) as f64;
        prop_assert!((inference.p_d.mle - expect_p_d).abs() < 1e-12);
        prop_assert!((inference.p_i.mle - expect_p_i).abs() < 1e-12);
        // The reported intervals always cover their own MLE.
        prop_assert!(inference.p_d.wilson.contains(inference.p_d.mle));
        prop_assert!(inference.p_i.wilson.contains(inference.p_i.mle));
        prop_assert!(inference.p_d.likelihood_ratio.contains(inference.p_d.mle));
        prop_assert!(inference.p_i.likelihood_ratio.contains(inference.p_i.mle));
    }

    #[test]
    fn estimates_converge_to_the_drawing_parameters(
        seed in 0u64..1000,
        p_d in 0.05f64..0.6,
        p_i in 0.05f64..0.6,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let events = draw_trace(&mut rng, 4000, p_d, p_i);
        let inference = infer(&events);

        // Widened Wilson interval (~99.99% two-sided) around the
        // sample counts: the drawing parameter must fall inside.
        // Using z = 3.89 instead of the reported 1.96 makes the
        // expected failure rate per case ~1e-4, i.e. no flakes over
        // proptest's 256 cases.
        let wide = |successes: u64, trials: u64| {
            wilson_interval(successes, trials, 3.89).unwrap()
        };
        let d = wide(inference.counts.deletions, inference.counts.sends);
        prop_assert!(
            d.contains(p_d),
            "true P_d = {} outside widened [{}, {}]", p_d, d.lower, d.upper
        );
        let i = wide(
            inference.counts.insertions,
            inference.counts.insertions + inference.counts.receipts,
        );
        prop_assert!(
            i.contains(p_i),
            "true P_i = {} outside widened [{}, {}]", p_i, i.lower, i.upper
        );
    }
}

/// The paper-facing claim at a fixed seed: the drawing parameters sit
/// inside the *reported* 95% Wilson and likelihood-ratio intervals.
#[test]
fn known_parameters_fall_in_reported_intervals() {
    let (p_d, p_i) = (0.3, 0.2);
    let mut rng = StdRng::seed_from_u64(7);
    let events = draw_trace(&mut rng, 20_000, p_d, p_i);
    let inference = infer(&events);
    assert!(
        inference.p_d.wilson.contains(p_d),
        "P_d Wilson {:?} misses {p_d}",
        inference.p_d.wilson
    );
    assert!(
        inference.p_d.likelihood_ratio.contains(p_d),
        "P_d LR {:?} misses {p_d}",
        inference.p_d.likelihood_ratio
    );
    assert!(
        inference.p_i.wilson.contains(p_i),
        "P_i Wilson {:?} misses {p_i}",
        inference.p_i.wilson
    );
    assert!(
        inference.p_i.likelihood_ratio.contains(p_i),
        "P_i LR {:?} misses {p_i}",
        inference.p_i.likelihood_ratio
    );
    // A stationary i.i.d. draw passes the change-point scan.
    assert!(inference.stationarity.stationary);
}
