//! Property tests pinning the serve-path ⇄ batch-path oracle: the
//! incremental [`InferenceBuilder`] (what `nsc serve` drives per
//! stream) and the batch [`infer_events`] (what `nsc estimate`
//! drives) must agree **byte for byte** on any valid event sequence,
//! regardless of how the bytes were chunked in transit. Three laws:
//!
//! 1. **Incremental = batch** — observing events one at a time and
//!    then calling `infer` produces a serialization identical to the
//!    batch path, including identical error messages on degenerate
//!    (no-send / no-delivery) streams.
//! 2. **Chunking is invisible** — delivering the serialized trace
//!    through arbitrary read-boundary splits (socket-style partial
//!    reads, tiny `BufReader` capacities, a missing final newline)
//!    reaches the same builder state as observing the events
//!    directly.
//! 3. **Compaction preserves the estimates** — a bounded-memory
//!    builder (the serve default) reports the same counts and rate
//!    estimates as an unbounded one; only the change-point block
//!    granularity may differ.

use nsc_trace::{
    infer_events, write_trace, InferenceBuilder, TraceError, TraceEvent, TraceEventKind,
    TraceHeader, TraceReader,
};
use proptest::prelude::*;
use std::io::{BufReader, Read};

/// Builds a valid event stream from raw proptest fuel: tick deltas
/// keep timestamps non-decreasing, symbols are masked into range.
fn assemble(bits: u32, raw: &[(u64, u8, u32)]) -> Vec<TraceEvent> {
    let mask = (1u32 << bits) - 1;
    let mut tick = 0u64;
    raw.iter()
        .map(|&(delta, kind, sym)| {
            tick += delta;
            let sym = sym & mask;
            let kind = match kind {
                0 => TraceEventKind::Send(sym),
                1 => TraceEventKind::Recv(sym),
                2 => TraceEventKind::Delete(sym),
                3 => TraceEventKind::Insert(sym),
                _ => TraceEventKind::Ack,
            };
            TraceEvent::new(tick, kind)
        })
        .collect()
}

/// A reader that refuses to return more than one chunk per `read`
/// call: simulates socket-style partial delivery at arbitrary byte
/// boundaries (a line may be split anywhere, including mid-number).
struct ChunkedRead {
    data: Vec<u8>,
    cuts: Vec<usize>,
    pos: usize,
}

impl Read for ChunkedRead {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.pos >= self.data.len() {
            return Ok(0);
        }
        let next_cut = self
            .cuts
            .iter()
            .copied()
            .find(|&c| c > self.pos)
            .unwrap_or(self.data.len());
        let n = buf.len().min(next_cut - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// Both inference outcomes, byte for byte: identical serializations
/// on success, identical messages on (expected, typed) failure.
fn assert_same_outcome(
    a: Result<nsc_trace::TraceInference, TraceError>,
    b: Result<nsc_trace::TraceInference, TraceError>,
) -> Result<(), TestCaseError> {
    match (a, b) {
        (Ok(a), Ok(b)) => prop_assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        ),
        (Err(a), Err(b)) => prop_assert_eq!(a.to_string(), b.to_string()),
        (a, b) => prop_assert!(false, "paths disagree: {a:?} vs {b:?}"),
    }
    Ok(())
}

proptest! {
    #[test]
    fn incremental_builder_matches_batch_byte_for_byte(
        bits in 1u32..=4,
        raw in proptest::collection::vec((0u64..3, 0u8..5, 0u32..=u32::MAX), 0..300),
        windows in 1usize..12,
    ) {
        let events = assemble(bits, &raw);
        let batch = infer_events(events.iter().copied().map(Ok), windows, 1);
        let mut builder = InferenceBuilder::new();
        for event in &events {
            builder.observe(event);
        }
        assert_same_outcome(batch, builder.infer(windows, 1))?;
        prop_assert_eq!(builder.events(), events.len() as u64);
    }

    #[test]
    fn chunked_delivery_reaches_the_same_state(
        bits in 1u32..=4,
        raw in proptest::collection::vec((0u64..3, 0u8..5, 0u32..=u32::MAX), 1..200),
        cut_seeds in proptest::collection::vec(0usize..100_000, 0..16),
        cap in 1usize..64,
        drop_final_newline in any::<bool>(),
    ) {
        let events = assemble(bits, &raw);
        let mut bytes = Vec::new();
        write_trace(&mut bytes, &TraceHeader::new(bits), events.clone()).unwrap();
        if drop_final_newline {
            bytes.pop();
        }
        let mut cuts: Vec<usize> = cut_seeds.iter().map(|s| s % bytes.len()).collect();
        cuts.sort_unstable();
        let source = ChunkedRead { data: bytes, cuts, pos: 0 };
        let mut reader = TraceReader::new(BufReader::with_capacity(cap, source)).unwrap();
        let mut streamed = InferenceBuilder::new();
        while let Some(event) = reader.read_event().unwrap() {
            streamed.observe(&event);
        }
        prop_assert_eq!(streamed.events(), events.len() as u64);
        let mut direct = InferenceBuilder::new();
        for event in &events {
            direct.observe(event);
        }
        assert_same_outcome(direct.infer(8, 1), streamed.infer(8, 1))?;
    }

    #[test]
    fn compacted_builder_preserves_the_estimates(
        bits in 1u32..=3,
        raw in proptest::collection::vec((0u64..3, 0u8..5, 0u32..=u32::MAX), 1..400),
        block_events in 1u64..4,
        max_blocks in 2usize..10,
    ) {
        let events = assemble(bits, &raw);
        let mut compact = InferenceBuilder::with_limits(block_events, max_blocks);
        let mut full = InferenceBuilder::new();
        for event in &events {
            compact.observe(event);
            full.observe(event);
        }
        prop_assert!(compact.blocks_held() <= max_blocks);
        match (full.infer(8, 1), compact.infer(8, 1)) {
            (Ok(f), Ok(c)) => {
                prop_assert_eq!(
                    serde_json::to_string(&f.counts).unwrap(),
                    serde_json::to_string(&c.counts).unwrap()
                );
                prop_assert_eq!(
                    serde_json::to_string(&f.p_d).unwrap(),
                    serde_json::to_string(&c.p_d).unwrap()
                );
                prop_assert_eq!(
                    serde_json::to_string(&f.p_i).unwrap(),
                    serde_json::to_string(&c.p_i).unwrap()
                );
            }
            (Err(f), Err(c)) => prop_assert_eq!(f.to_string(), c.to_string()),
            (f, c) => prop_assert!(false, "paths disagree: {f:?} vs {c:?}"),
        }
    }
}
