//! The runtime half of the allocation audit (DESIGN §14) for the
//! trace crate: the writer's line renderer reuses its byte buffer and
//! the streaming inference builder keeps bounded tallies, so both
//! must be allocation-free in the steady state.

use nsc_bench::alloc::{alloc_census, oracle_live, CountingAlloc};
use nsc_trace::format::{render_event_line, TraceEvent, TraceEventKind};
use nsc_trace::infer::InferenceBuilder;
use std::hint::black_box;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn events() -> Vec<TraceEvent> {
    (0..512u64)
        .map(|t| {
            let kind = match t % 5 {
                0 => TraceEventKind::Send((t % 16) as u32),
                1 => TraceEventKind::Recv((t % 16) as u32),
                2 => TraceEventKind::Delete((t % 16) as u32),
                3 => TraceEventKind::Insert((t % 16) as u32),
                _ => TraceEventKind::Ack,
            };
            TraceEvent::new(t, kind)
        })
        .collect()
}

#[test]
fn render_event_line_steady_state_is_allocation_free() {
    assert!(
        oracle_live(),
        "CountingAlloc is not this binary's global allocator; censuses would be vacuous"
    );
    let events = events();
    let mut buf = Vec::new();
    // Warm-up: the longest line sizes the buffer once.
    let ((), warm) = alloc_census(|| {
        for e in &events {
            render_event_line(&mut buf, e);
            black_box(buf.as_slice());
        }
    });
    assert!(warm.allocs > 0, "warm-up made no allocations — oracle miswired");
    let ((), steady) = alloc_census(|| {
        for e in &events {
            render_event_line(&mut buf, e);
            black_box(buf.as_slice());
        }
    });
    assert_eq!(
        steady.allocs, 0,
        "render_event_line steady-state made {} allocations",
        steady.allocs
    );
}

#[test]
fn inference_builder_observe_is_allocation_free_within_a_block() {
    assert!(oracle_live());
    let events = events();
    // A block granularity beyond the event count: after the first
    // block is pushed, `observe` only mutates fixed-size tallies.
    let mut builder = InferenceBuilder::with_limits(1 << 20, 64);
    let ((), warm) = alloc_census(|| {
        for e in &events {
            builder.observe(e);
        }
    });
    assert!(warm.allocs > 0, "first block push should allocate — oracle miswired");
    let ((), steady) = alloc_census(|| {
        for e in &events {
            builder.observe(e);
        }
    });
    assert_eq!(
        steady.allocs, 0,
        "InferenceBuilder::observe steady-state made {} allocations",
        steady.allocs
    );
}
