//! Regenerates every experiment table (E1–E14).
//!
//! Usage:
//!
//! ```text
//! experiments [--seed N] [--threads T] [--json] [e1 .. e14]
//! ```
//!
//! With no experiment names, runs everything. `--json` prints one
//! machine-readable document instead of the text tables. `--threads`
//! sets the trial-engine worker count (0 = one per core, the
//! default); by the engine's determinism contract it changes
//! wall-clock time only — output for a given `--seed` is
//! byte-identical at any thread count.

use nsc_bench as bench;
use nsc_core::engine::EngineConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed = 20_050_605u64; // ICDCS 2005 vintage.
    let mut threads = 0usize; // auto
    let mut selected: Vec<String> = Vec::new();
    let mut json = false;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        if arg == "--json" {
            json = true;
        } else if arg == "--seed" {
            seed = it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                eprintln!("--seed needs an integer");
                std::process::exit(2);
            });
        } else if arg == "--threads" {
            threads = it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                eprintln!("--threads needs an integer (0 = auto)");
                std::process::exit(2);
            });
        } else {
            selected.push(arg.to_lowercase());
        }
    }
    let cfg = EngineConfig::seeded(seed).with_threads(threads);
    if json {
        let doc = bench::json_out::experiments_json_cfg(&cfg, &selected);
        println!(
            "{}",
            serde_json::to_string_pretty(&doc).expect("experiment rows serialize")
        );
        return;
    }
    let run = |name: &str| selected.is_empty() || selected.iter().any(|s| s == name);
    println!("# Non-Synchronous Covert Channels — experiment run (seed = {seed})\n");
    if run("e1") {
        print!("{}", bench::channel_fidelity::run(seed));
    }
    if run("e2") {
        print!("{}", bench::bounds_exp::run_e2(seed));
    }
    if run("e3") {
        print!("{}", bench::protocol_exp::run_e3_cfg(&cfg));
    }
    if run("e4") {
        print!("{}", bench::protocol_exp::run_e4_cfg(&cfg));
    }
    if run("e5") {
        print!("{}", bench::bounds_exp::run_e5());
    }
    if run("e6") {
        print!("{}", bench::protocol_exp::run_e6_cfg(&cfg));
    }
    if run("e7") {
        print!("{}", bench::protocol_exp::run_e7_cfg(&cfg));
    }
    if run("e8") {
        print!("{}", bench::sched_exp::run(seed));
    }
    if run("e9") {
        print!("{}", bench::coding_exp::run_cfg(&cfg));
    }
    if run("e10") {
        print!("{}", bench::baseline_exp::run());
    }
    if run("e11") {
        print!("{}", bench::ablation_exp::run_e11_cfg(&cfg));
    }
    if run("e12") {
        print!("{}", bench::ablation_exp::run_e12_cfg(&cfg));
    }
    if run("e13") {
        print!("{}", bench::timing_exp::run(seed));
    }
    if run("e14") {
        print!("{}", bench::wide_exp::run_cfg(&cfg));
    }
}
