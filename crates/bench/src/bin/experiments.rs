//! Regenerates every experiment table (E1–E10).
//!
//! Usage:
//!
//! ```text
//! experiments [--seed N] [--json] [e1 .. e14]
//! ```
//!
//! With no experiment names, runs everything. `--json` prints one
//! machine-readable document instead of the text tables.

use nsc_bench as bench;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed = 20_050_605u64; // ICDCS 2005 vintage.
    let mut selected: Vec<String> = Vec::new();
    let mut json = false;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        if arg == "--json" {
            json = true;
        } else if arg == "--seed" {
            seed = it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                eprintln!("--seed needs an integer");
                std::process::exit(2);
            });
        } else {
            selected.push(arg.to_lowercase());
        }
    }
    if json {
        let doc = bench::json_out::experiments_json(seed, &selected);
        println!(
            "{}",
            serde_json::to_string_pretty(&doc).expect("experiment rows serialize")
        );
        return;
    }
    let run = |name: &str| selected.is_empty() || selected.iter().any(|s| s == name);
    println!("# Non-Synchronous Covert Channels — experiment run (seed = {seed})\n");
    if run("e1") {
        print!("{}", bench::channel_fidelity::run(seed));
    }
    if run("e2") {
        print!("{}", bench::bounds_exp::run_e2(seed));
    }
    if run("e3") {
        print!("{}", bench::protocol_exp::run_e3(seed));
    }
    if run("e4") {
        print!("{}", bench::protocol_exp::run_e4(seed));
    }
    if run("e5") {
        print!("{}", bench::bounds_exp::run_e5());
    }
    if run("e6") {
        print!("{}", bench::protocol_exp::run_e6(seed));
    }
    if run("e7") {
        print!("{}", bench::protocol_exp::run_e7(seed));
    }
    if run("e8") {
        print!("{}", bench::sched_exp::run(seed));
    }
    if run("e9") {
        print!("{}", bench::coding_exp::run(seed));
    }
    if run("e10") {
        print!("{}", bench::baseline_exp::run());
    }
    if run("e11") {
        print!("{}", bench::ablation_exp::run_e11(seed));
    }
    if run("e12") {
        print!("{}", bench::ablation_exp::run_e12(seed));
    }
    if run("e13") {
        print!("{}", bench::timing_exp::run(seed));
    }
    if run("e14") {
        print!("{}", bench::wide_exp::run(seed));
    }
}
