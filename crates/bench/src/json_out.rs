//! Machine-readable experiment output.
//!
//! The text tables in the sibling modules are for humans;
//! [`experiments_json`] assembles the same rows into one JSON
//! document (keyed `e1`…`e14`) so plots and regression tooling can
//! consume a run without scraping tables.
//!
//! The document is a pure function of the master seed: running under
//! [`experiments_json_cfg`] with any thread count produces
//! byte-identical output (the CI `determinism` job diffs exactly
//! this).

use nsc_core::engine::{EngineConfig, RunManifest};
use serde_json::{json, Value};

/// Assembles every experiment's structured rows into one JSON value.
/// Pass a subset filter like the CLI's (empty = everything).
pub fn experiments_json(seed: u64, selected: &[String]) -> Value {
    experiments_json_cfg(&EngineConfig::serial(seed), selected)
}

/// [`experiments_json`] under the trial engine: row sweeps of the
/// engine-routed experiments (E3, E4, E6, E7, E9, E11, E12, E14) run
/// on `cfg.threads` workers.
///
/// The document opens with the run's [`RunManifest`] (the same type
/// the `nsc` CLI emits) in place of loose metadata. It carries the
/// deterministic fields only — no execution record — because this
/// document is byte-diffed across thread counts by CI, and thread
/// counts or wall-clock cannot influence any value in it. Trial
/// counts vary per experiment, so the manifest's own count is unset.
pub fn experiments_json_cfg(cfg: &EngineConfig, selected: &[String]) -> Value {
    let seed = cfg.master_seed;
    let want = |name: &str| selected.is_empty() || selected.iter().any(|s| s == name);
    let mut root = serde_json::Map::new();
    let plan = if selected.is_empty() {
        "experiments(all)".to_owned()
    } else {
        format!("experiments({})", selected.join(","))
    };
    root.insert(
        "manifest".to_owned(),
        json!(RunManifest::new(cfg, plan, None)),
    );
    if want("e1") {
        root.insert("e1".to_owned(), json!(crate::channel_fidelity::rows(seed)));
    }
    if want("e2") {
        root.insert("e2".to_owned(), json!(crate::bounds_exp::rows_e2(seed)));
    }
    if want("e3") {
        root.insert(
            "e3".to_owned(),
            json!(crate::protocol_exp::rows_e3_cfg(cfg)),
        );
    }
    if want("e4") {
        root.insert(
            "e4".to_owned(),
            json!(crate::protocol_exp::rows_e4_cfg(cfg)),
        );
    }
    if want("e5") {
        root.insert("e5".to_owned(), json!(crate::bounds_exp::rows_e5()));
    }
    if want("e6") {
        root.insert(
            "e6".to_owned(),
            json!(crate::protocol_exp::rows_e6_cfg(cfg)),
        );
    }
    if want("e7") {
        let per_q: Vec<Value> = crate::protocol_exp::E7_REPORT_Q
            .iter()
            .map(|&q| {
                json!({
                    "q": q,
                    "mechanisms": crate::protocol_exp::rows_e7_cfg(q, cfg),
                })
            })
            .collect();
        root.insert("e7".to_owned(), json!(per_q));
    }
    if want("e8") {
        let loads: Vec<Value> = crate::sched_exp::rows(seed)
            .into_iter()
            .map(|((n, ready), reports)| {
                json!({
                    "background": n,
                    "ready_prob": ready,
                    "policies": reports,
                })
            })
            .collect();
        root.insert(
            "e8".to_owned(),
            json!({
                "loads": loads,
                "priority_workload": crate::sched_exp::priority_rows(seed),
            }),
        );
    }
    if want("e9") {
        let rows: Vec<Value> = crate::coding_exp::rows_cfg(cfg)
            .into_iter()
            .map(|r| {
                json!({
                    "p_d": r.p_d,
                    "feedback_capacity": r.feedback_capacity,
                    "codecs": r.codecs
                        .iter()
                        .map(|(name, e)| json!({"codec": name, "eval": e}))
                        .collect::<Vec<Value>>(),
                })
            })
            .collect();
        root.insert("e9".to_owned(), json!(rows));
    }
    if want("e10") {
        root.insert(
            "e10".to_owned(),
            json!({
                "dmc": crate::baseline_exp::dmc_rows(),
                "fsm": crate::baseline_exp::fsm_rows(),
                "timed_z": crate::baseline_exp::timed_z_rows(),
            }),
        );
    }
    if want("e11") {
        root.insert(
            "e11".to_owned(),
            json!(crate::ablation_exp::rows_e11_cfg(cfg)),
        );
    }
    if want("e12") {
        root.insert(
            "e12".to_owned(),
            json!(crate::ablation_exp::rows_e12_cfg(cfg)),
        );
    }
    if want("e13") {
        root.insert("e13".to_owned(), json!(crate::timing_exp::rows(seed)));
    }
    if want("e14") {
        root.insert("e14".to_owned(), json!(crate::wide_exp::rows_cfg(cfg)));
    }
    Value::Object(root)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subset_selection_limits_keys() {
        let v = experiments_json(3, &["e5".to_owned(), "e10".to_owned()]);
        let obj = v.as_object().unwrap();
        assert!(obj.contains_key("e5"));
        assert!(obj.contains_key("e10"));
        assert!(!obj.contains_key("e2"));
        // The ad-hoc `seed` key became a full run manifest.
        assert_eq!(obj["manifest"]["master_seed"], 3);
        assert_eq!(obj["manifest"]["plan"], "experiments(e5,e10)");
        assert!(obj["manifest"]["engine_version"].is_string());
        // Deterministic document: no execution/timing section, no
        // trial count (it varies per experiment).
        let manifest = obj["manifest"].as_object().unwrap();
        assert!(!manifest.contains_key("execution"));
        assert!(!manifest.contains_key("trials"));
    }

    #[test]
    fn e5_rows_serialize_with_values() {
        let v = experiments_json(3, &["e5".to_owned()]);
        let rows = v["e5"].as_array().unwrap();
        assert_eq!(rows.len(), crate::bounds_exp::P_SWEEP.len());
        assert!(rows[0]["ratios"].as_array().unwrap().len() == crate::bounds_exp::N_SWEEP.len());
    }

    #[test]
    fn document_is_valid_json_text() {
        let v = experiments_json(3, &["e10".to_owned()]);
        let text = serde_json::to_string_pretty(&v).unwrap();
        let back: Value = serde_json::from_str(&text).unwrap();
        assert_eq!(back["e10"]["dmc"].as_array().unwrap().len(), 12);
    }

    #[test]
    fn json_byte_identical_across_thread_counts() {
        // The acceptance criterion, locally: same seed, 1 vs 4
        // threads, byte-identical serialized document (cheap subset).
        let sel = vec!["e6".to_owned(), "e14".to_owned()];
        let one = experiments_json_cfg(&EngineConfig::serial(9), &sel);
        let four = experiments_json_cfg(&EngineConfig::seeded(9).with_threads(4), &sel);
        assert_eq!(
            serde_json::to_string_pretty(&one).unwrap(),
            serde_json::to_string_pretty(&four).unwrap()
        );
    }
}
