//! Machine-readable experiment output.
//!
//! The text tables in the sibling modules are for humans;
//! [`experiments_json`] assembles the same rows into one JSON
//! document (keyed `e1`…`e14`) so plots and regression tooling can
//! consume a run without scraping tables.

use serde_json::{json, Value};

/// Assembles every experiment's structured rows into one JSON value.
/// Pass a subset filter like the CLI's (empty = everything).
pub fn experiments_json(seed: u64, selected: &[String]) -> Value {
    let want = |name: &str| selected.is_empty() || selected.iter().any(|s| s == name);
    let mut root = serde_json::Map::new();
    root.insert("seed".to_owned(), json!(seed));
    if want("e1") {
        root.insert("e1".to_owned(), json!(crate::channel_fidelity::rows(seed)));
    }
    if want("e2") {
        root.insert("e2".to_owned(), json!(crate::bounds_exp::rows_e2(seed)));
    }
    if want("e3") {
        root.insert("e3".to_owned(), json!(crate::protocol_exp::rows_e3(seed)));
    }
    if want("e4") {
        root.insert("e4".to_owned(), json!(crate::protocol_exp::rows_e4(seed)));
    }
    if want("e5") {
        root.insert("e5".to_owned(), json!(crate::bounds_exp::rows_e5()));
    }
    if want("e6") {
        root.insert("e6".to_owned(), json!(crate::protocol_exp::rows_e6(seed)));
    }
    if want("e7") {
        let per_q: Vec<Value> = [0.35, 0.5, 0.65]
            .iter()
            .map(|&q| {
                json!({
                    "q": q,
                    "mechanisms": crate::protocol_exp::rows_e7(q, seed),
                })
            })
            .collect();
        root.insert("e7".to_owned(), json!(per_q));
    }
    if want("e8") {
        let loads: Vec<Value> = crate::sched_exp::rows(seed)
            .into_iter()
            .map(|((n, ready), reports)| {
                json!({
                    "background": n,
                    "ready_prob": ready,
                    "policies": reports,
                })
            })
            .collect();
        root.insert(
            "e8".to_owned(),
            json!({
                "loads": loads,
                "priority_workload": crate::sched_exp::priority_rows(seed),
            }),
        );
    }
    if want("e9") {
        let rows: Vec<Value> = crate::coding_exp::rows(seed)
            .into_iter()
            .map(|r| {
                json!({
                    "p_d": r.p_d,
                    "feedback_capacity": r.feedback_capacity,
                    "codecs": r.codecs
                        .iter()
                        .map(|(name, e)| json!({"codec": name, "eval": e}))
                        .collect::<Vec<Value>>(),
                })
            })
            .collect();
        root.insert("e9".to_owned(), json!(rows));
    }
    if want("e10") {
        root.insert(
            "e10".to_owned(),
            json!({
                "dmc": crate::baseline_exp::dmc_rows(),
                "fsm": crate::baseline_exp::fsm_rows(),
                "timed_z": crate::baseline_exp::timed_z_rows(),
            }),
        );
    }
    if want("e11") {
        root.insert("e11".to_owned(), json!(crate::ablation_exp::rows_e11(seed)));
    }
    if want("e12") {
        root.insert("e12".to_owned(), json!(crate::ablation_exp::rows_e12(seed)));
    }
    if want("e13") {
        root.insert("e13".to_owned(), json!(crate::timing_exp::rows(seed)));
    }
    if want("e14") {
        root.insert("e14".to_owned(), json!(crate::wide_exp::rows(seed)));
    }
    Value::Object(root)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subset_selection_limits_keys() {
        let v = experiments_json(3, &["e5".to_owned(), "e10".to_owned()]);
        let obj = v.as_object().unwrap();
        assert!(obj.contains_key("e5"));
        assert!(obj.contains_key("e10"));
        assert!(!obj.contains_key("e2"));
        assert_eq!(obj["seed"], 3);
    }

    #[test]
    fn e5_rows_serialize_with_values() {
        let v = experiments_json(3, &["e5".to_owned()]);
        let rows = v["e5"].as_array().unwrap();
        assert_eq!(rows.len(), crate::bounds_exp::P_SWEEP.len());
        assert!(rows[0]["ratios"].as_array().unwrap().len() == crate::bounds_exp::N_SWEEP.len());
    }

    #[test]
    fn document_is_valid_json_text() {
        let v = experiments_json(3, &["e10".to_owned()]);
        let text = serde_json::to_string_pretty(&v).unwrap();
        let back: Value = serde_json::from_str(&text).unwrap();
        assert_eq!(back["e10"]["dmc"].as_array().unwrap().len(), 12);
    }
}
