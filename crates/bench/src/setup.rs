//! Shared benchmark fixtures.
//!
//! The criterion benches under `benches/` and the in-process
//! [`crate::perf`] suites measure the same kernels, so they must
//! measure the same inputs. Each fixture here is deterministic —
//! seeded RNG or no RNG at all — so a benchmark's input bytes are
//! stable across runs and across the two harnesses.

use nsc_channel::alphabet::{Alphabet, Symbol};
use nsc_channel::di::{DeletionInsertionChannel, DiParams};
use nsc_trace::{write_trace, TraceEvent, TraceEventKind, TraceHeader};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A seeded random message over a `bits`-wide alphabet.
///
/// # Panics
///
/// Panics when `bits` is outside the alphabet's supported range.
#[must_use]
pub fn message(bits: u32, len: usize, seed: u64) -> Vec<Symbol> {
    let a = Alphabet::new(bits).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len).map(|_| a.random(&mut rng)).collect()
}

/// Passes a bit string through a deletion-only binary channel and
/// returns the received bits.
///
/// # Panics
///
/// Panics when `p_d` is not a probability.
#[must_use]
pub fn through_channel(bits: &[bool], p_d: f64, seed: u64) -> Vec<bool> {
    let ch =
        DeletionInsertionChannel::new(Alphabet::binary(), DiParams::deletion_only(p_d).unwrap());
    let input: Vec<Symbol> = bits.iter().map(|&b| Symbol::from_index(b as u32)).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    ch.transmit(&input, &mut rng)
        .received
        .iter()
        .map(|s| s.index() == 1)
        .collect()
}

/// A deterministic stationary trace of roughly `2.3 * sends` events
/// over a 2-bit alphabet: every fourth send is deleted, every eighth
/// delivery attempt is preceded by an insertion. No RNG — the bench
/// input is byte-stable across runs.
#[must_use]
pub fn synthetic_events(sends: u64) -> Vec<TraceEvent> {
    let mut events = Vec::with_capacity(3 * sends as usize);
    let mut tick = 0u64;
    for i in 0..sends {
        events.push(TraceEvent::new(tick, TraceEventKind::Send((i % 4) as u32)));
        tick += 1;
        if i % 4 == 0 {
            events.push(TraceEvent::new(
                tick,
                TraceEventKind::Delete((i % 4) as u32),
            ));
        } else {
            if i % 8 == 1 {
                events.push(TraceEvent::new(tick, TraceEventKind::Insert(0)));
            }
            events.push(TraceEvent::new(tick, TraceEventKind::Recv((i % 4) as u32)));
        }
        tick += 1;
    }
    events
}

/// [`synthetic_events`] serialized as an `nsc-trace/v1` file, plus
/// the event count.
///
/// # Panics
///
/// Never in practice: the synthetic events satisfy every writer
/// invariant.
#[must_use]
pub fn serialized_trace(sends: u64) -> (Vec<u8>, u64) {
    let events = synthetic_events(sends);
    let mut file = Vec::new();
    let written = write_trace(&mut file, &TraceHeader::new(2), events).unwrap();
    (file, written)
}
