//! A counting global allocator: the runtime half of the allocation
//! audit (DESIGN §14).
//!
//! `nsc-lint`'s `hot-alloc` rule is lexical — it flags allocation
//! *patterns* inside hot regions but cannot see through calls. This
//! module supplies the complementary runtime oracle: [`CountingAlloc`]
//! wraps the system allocator and counts every allocation made while
//! a census is recording, so tests can assert that a warm scratch
//! path makes **zero** allocations, not merely that none are
//! lexically visible.
//!
//! # Registration
//!
//! Counting only happens when `CountingAlloc` is the registered
//! global allocator of the running binary:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: nsc_bench::alloc::CountingAlloc = nsc_bench::alloc::CountingAlloc;
//! ```
//!
//! This crate deliberately does **not** register it itself: a
//! `#[global_allocator]` in a library would impose the allocator on
//! every dependent binary and collide with any allocator they pick.
//! Each census test binary (and `nsc-cli`, so `nsc bench` can report
//! `allocs_per_iter`) registers its own static. Because counts are
//! silently zero when some other allocator is registered, every
//! census site must first check [`oracle_live`] — a census of a
//! known allocation — so a mis-wired binary fails loudly instead of
//! vacuously passing.
//!
//! # Scope
//!
//! The recording flag *and* the counters are thread-local: a census
//! observes only allocations made by the calling thread, so parallel
//! test threads (the default `cargo test` harness) do not pollute
//! each other's counts — and, conversely, a kernel that allocates on
//! worker threads it spawns reports zero. Only single-threaded
//! kernels can meaningfully be censused. `alloc`, `alloc_zeroed`,
//! and `realloc` each count as one allocation (a `Vec` growth
//! doubling is an observable event); frees are not counted.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

/// Per-thread census state. Counters are monotonic for the thread's
/// lifetime; [`alloc_census`] reads deltas, which also gives nested
/// censuses for free.
struct CensusState {
    /// Whether this thread is inside an [`alloc_census`].
    recording: Cell<bool>,
    /// Allocation events observed by this thread while recording.
    allocs: Cell<u64>,
    /// Bytes requested by those events.
    bytes: Cell<u64>,
}

thread_local! {
    /// `const` init keeps the TLS access itself allocation-free.
    static STATE: CensusState = const {
        CensusState {
            recording: Cell::new(false),
            allocs: Cell::new(0),
            bytes: Cell::new(0),
        }
    };
}

/// Records one allocation event of `bytes` bytes if the current
/// thread is censusing. `try_with` guards against TLS teardown during
/// thread exit, when allocation can still occur.
fn record(bytes: usize) {
    let _ = STATE.try_with(|s| {
        if s.recording.get() {
            s.allocs.set(s.allocs.get() + 1);
            s.bytes.set(s.bytes.get() + bytes as u64);
        }
    });
}

/// A [`GlobalAlloc`] that delegates to [`System`] and counts
/// allocation events made by threads inside an [`alloc_census`]. See
/// the module docs for registration and scope.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingAlloc;

// SAFETY: every method delegates directly to `System`, which upholds
// the `GlobalAlloc` contract; the counting side effect touches only
// an atomic and a thread-local flag and never observes or alters the
// returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: caller upholds the GlobalAlloc contract; delegated to System unchanged.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        record(layout.size());
        // SAFETY: forwarded verbatim under the caller's contract.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: caller upholds the GlobalAlloc contract; delegated to System unchanged.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        record(layout.size());
        // SAFETY: forwarded verbatim under the caller's contract.
        unsafe { System.alloc_zeroed(layout) }
    }

    // SAFETY: caller upholds the GlobalAlloc contract; delegated to System unchanged.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: forwarded verbatim under the caller's contract.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: caller upholds the GlobalAlloc contract; delegated to System unchanged.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        record(new_size);
        // SAFETY: forwarded verbatim under the caller's contract.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// What a closure allocated, as observed by [`alloc_census`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Census {
    /// Allocation events (`alloc` + `alloc_zeroed` + `realloc`).
    pub allocs: u64,
    /// Total bytes those events requested.
    pub bytes: u64,
}

/// Runs `f` with allocation recording enabled on the current thread
/// and returns its result alongside the observed [`Census`].
///
/// Counts are all zero unless [`CountingAlloc`] is the binary's
/// registered global allocator — pair with [`oracle_live`] to reject
/// that false negative. Nested censuses are supported; the inner
/// census's events are also visible to the outer one.
pub fn alloc_census<R>(f: impl FnOnce() -> R) -> (R, Census) {
    let (allocs_before, bytes_before, was_recording) = STATE.with(|s| {
        let was = s.recording.replace(true);
        (s.allocs.get(), s.bytes.get(), was)
    });
    let out = f();
    let census = STATE.with(|s| {
        s.recording.set(was_recording);
        Census {
            allocs: s.allocs.get() - allocs_before,
            bytes: s.bytes.get() - bytes_before,
        }
    });
    (out, census)
}

/// Returns `true` when the census oracle actually observes
/// allocations — i.e. [`CountingAlloc`] is this binary's registered
/// global allocator. Census tests must assert this up front:
/// otherwise a "zero allocations" assertion passes vacuously in any
/// binary that forgot the `#[global_allocator]` line.
pub fn oracle_live() -> bool {
    let (probe, census) = alloc_census(|| std::hint::black_box(vec![0u8; 4096]));
    drop(probe);
    census.allocs > 0
}

#[cfg(test)]
mod tests {
    use super::*;

    // The bench crate's own unit-test binary does not register
    // CountingAlloc, so only the pure bookkeeping is testable here;
    // liveness is exercised by the per-crate `alloc_census`
    // integration tests that do register it.

    #[test]
    fn census_of_nothing_is_zero() {
        let ((), census) = alloc_census(|| ());
        assert_eq!(census, Census::default());
    }

    #[test]
    fn census_restores_the_recording_flag() {
        let (inner, _) = alloc_census(|| {
            let ((), nested) = alloc_census(|| ());
            nested
        });
        assert_eq!(inner, Census::default());
        assert!(!STATE.with(|s| s.recording.get()));
    }
}
