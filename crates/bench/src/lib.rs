//! Experiment harness regenerating every quantitative claim of
//! Wang & Lee (ICDCS 2005).
//!
//! The paper is analytical — its five figures are schematics and its
//! results are equations — so "reproducing the evaluation" means
//! regenerating each equation, theorem, and figure-level claim as a
//! numerical experiment. The experiment index (E1–E14) lives in
//! `DESIGN.md`; each module here implements one group:
//!
//! * [`channel_fidelity`] — E1: the simulator realizes Definition 1.
//! * [`bounds_exp`] — E2 & E5: Theorem 1's bound cross-validated by
//!   Blahut–Arimoto, and the equation (6)–(7) convergence table.
//! * [`protocol_exp`] — E3, E4, E6, E7: resend, counter,
//!   stop-and-wait, and the mechanism comparison.
//! * [`sched_exp`] — E8: the scheduler study.
//! * [`coding_exp`] — E9: non-synchronized coding rates.
//! * [`baseline_exp`] — E10: traditional estimators validated.
//! * [`ablation_exp`] — E11 & E12: burstiness and imperfect-feedback
//!   ablations of the paper's modelling assumptions.
//! * [`timing_exp`] — E13: the §4.3 recipe on a scheduler-borne
//!   covert timing channel.
//! * [`wide_exp`] — E14: torn writes as the mechanistic origin of
//!   `P_s`.
//!
//! Every experiment takes a seed and is fully deterministic. The
//! `experiments` binary prints all tables; `EXPERIMENTS.md` archives
//! a run.
//!
//! Four support modules sit beside the experiments: [`setup`] holds
//! the deterministic fixtures shared by the criterion benches and
//! the regression suites, [`perf`] holds the in-process
//! micro-benchmark suites behind `nsc bench` and
//! `scripts/bench_export`, [`seed_decode`] freezes the
//! pre-optimization watermark decode path as the `coding` suite's
//! reference kernel, and [`alloc`] holds the counting-allocator
//! census oracle behind the allocation-audit tests (DESIGN §14).

pub mod ablation_exp;
pub mod alloc;
pub mod baseline_exp;
pub mod bounds_exp;
pub mod channel_fidelity;
pub mod coding_exp;
pub mod json_out;
pub mod perf;
pub mod protocol_exp;
pub mod sched_exp;
pub mod seed_decode;
pub mod setup;
pub mod table;
pub mod timing_exp;
pub mod wide_exp;

use nsc_core::engine::EngineConfig;

/// Runs every experiment and concatenates their reports.
pub fn run_all(seed: u64) -> String {
    run_all_cfg(&EngineConfig::serial(seed))
}

/// [`run_all`] under the trial engine: the engine-routed experiments
/// (E3, E4, E6, E7, E9, E11, E12, E14) spread their row sweeps over
/// `cfg.threads` workers; the report text is byte-identical at any
/// thread count.
pub fn run_all_cfg(cfg: &EngineConfig) -> String {
    let seed = cfg.master_seed;
    let mut out = String::new();
    out.push_str(&channel_fidelity::run(seed));
    out.push_str(&bounds_exp::run_e2(seed));
    out.push_str(&protocol_exp::run_e3_cfg(cfg));
    out.push_str(&protocol_exp::run_e4_cfg(cfg));
    out.push_str(&bounds_exp::run_e5());
    out.push_str(&protocol_exp::run_e6_cfg(cfg));
    out.push_str(&protocol_exp::run_e7_cfg(cfg));
    out.push_str(&sched_exp::run(seed));
    out.push_str(&coding_exp::run_cfg(cfg));
    out.push_str(&baseline_exp::run());
    out.push_str(&ablation_exp::run_e11_cfg(cfg));
    out.push_str(&ablation_exp::run_e12_cfg(cfg));
    out.push_str(&timing_exp::run(seed));
    out.push_str(&wide_exp::run_cfg(cfg));
    out
}
