//! E9 — reliable communication *without* synchronization (§4.1).
//!
//! Sweeps the deletion rate and measures, for each coding scheme, the
//! bit error rate and the effective reliable rate, next to the
//! feedback capacity `1 − p_d` of Theorem 3 — reproducing the paper's
//! qualitative claim that non-synchronized communication is possible
//! but far less effective and needs sophisticated codes.
//!
//! Decoding runs through `evaluate_codec`'s scratch-reused hot path
//! (one `CodecScratch` per evaluation point, DESIGN §13), so the
//! sweep allocates per frame only on the encode side.

use crate::table::{f4, Table};
use nsc_coding::conv::ConvCode;
use nsc_coding::marker::MarkerCode;
use nsc_coding::rate::{evaluate_codec, CodeEvaluation, Codec};
use nsc_coding::repetition::RepetitionCode;
use nsc_coding::watermark::WatermarkCode;
use nsc_coding::watermark_ldpc::LdpcWatermarkCode;
use nsc_core::engine::{par_map, EngineConfig};
use serde::Serialize;

/// Deletion rates swept.
pub const E9_P_D: [f64; 4] = [0.02, 0.05, 0.08, 0.11];

/// Data bits per frame.
pub const FRAME_BITS: usize = 200;

/// Frames per evaluation point.
pub const TRIALS: usize = 3;

/// One row of E9.
#[derive(Debug, Clone, Serialize)]
pub struct E9Row {
    /// Deletion probability.
    pub p_d: f64,
    /// Evaluations per codec: `(name, eval)`.
    pub codecs: Vec<(&'static str, CodeEvaluation)>,
    /// Theorem 3 feedback capacity `1 − p_d` (bits per channel bit).
    pub feedback_capacity: f64,
}

/// The codec line-up under evaluation. Construction is
/// deterministic (fixed internal seeds), so parallel rows can each
/// build their own copies without perturbing any published number.
fn codec_lineup() -> Vec<Codec> {
    vec![
        Codec::Watermark(
            WatermarkCode::new(ConvCode::standard_half_rate(), 3, 0xBEEF)
                .expect("valid parameters"),
        ),
        Codec::LdpcWatermark(
            LdpcWatermarkCode::new(FRAME_BITS, FRAME_BITS, 3, 3, 0xBEEF).expect("valid parameters"),
        ),
        Codec::Marker(MarkerCode::default_params()),
        Codec::Repetition(RepetitionCode::new(5).expect("odd factor")),
        Codec::Sequential {
            code: ConvCode::standard_half_rate(),
            max_expansions: 100_000,
        },
    ]
}

/// Runs E9 and returns rows.
pub fn rows(seed: u64) -> Vec<E9Row> {
    rows_cfg(&EngineConfig::serial(seed))
}

/// [`rows`] under the trial engine: deletion-rate rows evaluate in
/// parallel, each with its own codec instances.
pub fn rows_cfg(cfg: &EngineConfig) -> Vec<E9Row> {
    let seed = cfg.master_seed;
    par_map(cfg, &E9_P_D, |_, &p_d| E9Row {
        p_d,
        codecs: codec_lineup()
            .iter()
            .map(|c| {
                (
                    c.name(),
                    evaluate_codec(c, FRAME_BITS, p_d, 0.0, 0.0, TRIALS, seed)
                        .expect("valid evaluation"),
                )
            })
            .collect(),
        feedback_capacity: 1.0 - p_d,
    })
    .expect("engine delivered every row")
}

/// Renders E9.
pub fn run(seed: u64) -> String {
    run_cfg(&EngineConfig::serial(seed))
}

/// Renders E9 under the trial engine.
pub fn run_cfg(cfg: &EngineConfig) -> String {
    let mut t = Table::new([
        "p_d",
        "codec",
        "rate",
        "BER",
        "frame ok",
        "eff. rate",
        "feedback cap (Thm 3)",
    ]);
    for r in rows_cfg(cfg) {
        for (name, e) in &r.codecs {
            t.row([
                f4(r.p_d),
                (*name).to_owned(),
                f4(e.rate),
                f4(e.ber),
                f4(e.frame_success),
                f4(e.effective_rate),
                f4(r.feedback_capacity),
            ]);
        }
    }
    format!(
        "\n## E9 — §4.1: coding over the deletion channel without synchronization\n\n\
         {FRAME_BITS}-bit frames, {TRIALS} trials per point, binary channel. The\n\
         watermark codes (drift lattice + conv or LDPC outer code) deliver\n\
         reliably at rates well below the Theorem 3 feedback capacity;\n\
         Zigangirov-style sequential decoding (ref. [12]) works at low rates\n\
         then exhausts its search budget; markers degrade sooner; synchronous\n\
         repetition collapses.\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watermark_is_reliable_at_low_noise_and_far_below_capacity() {
        let all = rows(21);
        let first = &all[0];
        let (name, wm) = &first.codecs[0];
        assert_eq!(*name, "watermark+conv");
        assert!(wm.ber < 0.01, "{wm:?}");
        // The paper's headline: achieved rate << feedback capacity.
        assert!(wm.rate < first.feedback_capacity / 3.0);
    }

    #[test]
    fn repetition_collapses_everywhere() {
        for r in rows(22) {
            let (_, rp) = r
                .codecs
                .iter()
                .find(|(n, _)| *n == "repetition")
                .expect("repetition present");
            assert!(rp.ber > 0.1, "p_d={} rp={rp:?}", r.p_d);
        }
    }

    #[test]
    fn watermark_dominates_marker_in_ber() {
        for r in rows(23) {
            let get = |n: &str| {
                r.codecs
                    .iter()
                    .find(|(name, _)| *name == n)
                    .expect("codec present")
                    .1
            };
            assert!(
                get("watermark+conv").ber <= get("marker").ber + 0.02,
                "p_d = {}",
                r.p_d
            );
            assert!(
                get("watermark+ldpc").ber <= get("marker").ber + 0.02,
                "p_d = {}",
                r.p_d
            );
        }
    }

    #[test]
    fn report_renders() {
        let s = run(1);
        assert!(s.contains("E9"));
        assert!(s.contains("watermark+conv"));
        assert!(s.contains("watermark+ldpc"));
    }
}
