//! E1 — Definition 1 / Figure 2 fidelity.
//!
//! Pushes long pilot sequences through the deletion-insertion
//! simulator and checks that the empirical event frequencies match
//! the configured `(P_d, P_i, P_t, P_s)` by a chi-square
//! goodness-of-fit test over the four outcome categories.

use crate::table::{f4, Table};
use nsc_channel::alphabet::{Alphabet, Symbol};
use nsc_channel::di::{DeletionInsertionChannel, DiParams};
use nsc_channel::stats::goodness_of_fit;
use nsc_info::gamma::chi_square_p_value;
use nsc_info::stats::chi_square_threshold;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

/// Parameter sets exercised (p_d, p_i, p_s).
pub const PARAM_SETS: [(f64, f64, f64); 6] = [
    (0.0, 0.0, 0.0),
    (0.1, 0.0, 0.0),
    (0.0, 0.1, 0.0),
    (0.1, 0.1, 0.1),
    (0.3, 0.2, 0.05),
    (0.5, 0.4, 0.5),
];

/// Symbols per pilot run.
pub const PILOT_LEN: usize = 200_000;

/// One row of the E1 report.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FidelityRow {
    /// Configured parameters (p_d, p_i, p_s).
    pub configured: (f64, f64, f64),
    /// Empirical rates (p_d, p_i, p_t, p_s).
    pub empirical: (f64, f64, f64, f64),
    /// Chi-square statistic over the four categories.
    pub chi_square: f64,
    /// Acceptance threshold used (3 dof, 5 sigma).
    pub threshold: f64,
    /// Exact p-value of the statistic (3 degrees of freedom).
    pub p_value: f64,
}

impl FidelityRow {
    /// Whether the simulator passed the goodness-of-fit check.
    pub fn pass(&self) -> bool {
        self.chi_square < self.threshold
    }
}

/// Runs E1 and returns the structured rows.
pub fn rows(seed: u64) -> Vec<FidelityRow> {
    let alphabet = Alphabet::new(4).expect("4-bit alphabet is valid");
    PARAM_SETS
        .iter()
        .enumerate()
        .map(|(i, &(p_d, p_i, p_s))| {
            let params = DiParams::new(p_d, p_i, p_s).expect("built-in parameters valid");
            let channel = DeletionInsertionChannel::new(alphabet, params);
            let mut rng = StdRng::seed_from_u64(seed.wrapping_add(i as u64));
            let input: Vec<Symbol> = (0..PILOT_LEN)
                .map(|k| Symbol::from_index((k % 16) as u32))
                .collect();
            let out = channel.transmit(&input, &mut rng);
            let chi = goodness_of_fit(&out.events, &params).expect("non-empty log");
            FidelityRow {
                configured: (p_d, p_i, p_s),
                empirical: (
                    out.events.empirical_deletion_rate(),
                    out.events.empirical_insertion_rate(),
                    out.events.empirical_transmission_rate(),
                    out.events.empirical_substitution_rate(),
                ),
                chi_square: chi,
                threshold: chi_square_threshold(3, 5.0),
                p_value: chi_square_p_value(chi, 3).expect("valid statistic"),
            }
        })
        .collect()
}

/// Runs E1 and renders the report.
pub fn run(seed: u64) -> String {
    let mut t = Table::new([
        "p_d", "p_i", "p_s", "p_d^", "p_i^", "p_t^", "p_s^", "chi2", "p-value", "pass",
    ]);
    for r in rows(seed) {
        t.row([
            f4(r.configured.0),
            f4(r.configured.1),
            f4(r.configured.2),
            f4(r.empirical.0),
            f4(r.empirical.1),
            f4(r.empirical.2),
            f4(r.empirical.3),
            format!("{:.2}", r.chi_square),
            format!("{:.3}", r.p_value),
            if r.pass() { "yes" } else { "NO" }.to_owned(),
        ]);
    }
    format!(
        "\n## E1 — Deletion-insertion channel fidelity (Definition 1 / Figure 2)\n\n\
         {} pilot symbols per row, 4-bit alphabet; chi-square over the four\n\
         outcome categories with exact p-values; pass threshold = dof + 5\n\
         sigma (p-values fluctuate per seed, as they should under H0).\n\n{}",
        PILOT_LEN,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_parameter_sets_pass() {
        for r in rows(2024) {
            assert!(
                r.pass(),
                "chi2 {} >= {} at {:?}",
                r.chi_square,
                r.threshold,
                r.configured
            );
        }
    }

    #[test]
    fn empirical_rates_track_configured() {
        for r in rows(7) {
            assert!((r.empirical.0 - r.configured.0).abs() < 0.01);
            assert!((r.empirical.1 - r.configured.1).abs() < 0.01);
        }
    }

    #[test]
    fn p_values_are_unsuspicious() {
        // Under the null (the simulator IS Definition 1), p-values
        // should not be microscopically small.
        for r in rows(99) {
            assert!(r.p_value > 1e-6, "{r:?}");
            assert!((0.0..=1.0).contains(&r.p_value));
        }
    }

    #[test]
    fn report_contains_all_rows() {
        let s = run(1);
        assert!(s.contains("E1"));
        assert_eq!(s.matches("yes").count(), PARAM_SETS.len());
    }
}
