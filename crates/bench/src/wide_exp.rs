//! E14 — torn writes: the mechanistic origin of `P_s`.
//!
//! §3.1 derives `P_d` and `P_i` from scheduling; Definition 1 simply
//! *posits* `P_s`. E14 shows the missing mechanism: when the shared
//! variable is wider than one atomic store, a descheduled sender
//! leaves the region half-updated, and the receiver's samples are
//! **torn** — structured substitutions. Sweeping the symbol width at
//! a fixed scheduler shows the trade the paper's formulas then
//! capture: wider symbols carry more bits per read but tear more
//! often, and the corrected capacity stops growing linearly in `N`.

use crate::table::{f4, Table};
use nsc_channel::alphabet::{Alphabet, Symbol};
use nsc_channel::dmc::closed_form;
use nsc_core::engine::{par_map, EngineConfig};
use nsc_core::sim::wide::{run_wide_unsynchronized, SampleKind};
use nsc_core::sim::BernoulliSchedule;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

/// Symbol widths swept.
pub const E14_BITS: [u32; 4] = [1, 2, 4, 8];

/// Message symbols per run.
pub const E14_SYMBOLS: usize = 30_000;

/// One row of E14.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct E14Row {
    /// Symbol width in bits.
    pub bits: u32,
    /// Deletion rate per written symbol.
    pub p_d: f64,
    /// Stale-read (insertion) rate per sample.
    pub p_i: f64,
    /// Torn-read rate per sample — the mechanistic `P_s`.
    pub p_s_torn: f64,
    /// Symbol error rate among aligned (clean + torn) samples.
    pub aligned_error: f64,
    /// The naive Theorem 4 envelope `N (1 − P_d)`.
    pub naive_upper: f64,
    /// Substitution-aware per-slot capacity:
    /// `(1 − P_d) · C_mary(N, aligned_error)`.
    pub substitution_aware: f64,
}

/// Runs E14 and returns rows.
pub fn rows(seed: u64) -> Vec<E14Row> {
    rows_cfg(&EngineConfig::serial(seed))
}

/// [`rows`] under the trial engine: width rows evaluate in parallel
/// with per-width derived seeds, identical at any thread count.
pub fn rows_cfg(cfg: &EngineConfig) -> Vec<E14Row> {
    let seed = cfg.master_seed;
    par_map(cfg, &E14_BITS, |_, &bits| {
        let alphabet = Alphabet::new(bits).expect("valid width");
        let mut rng = StdRng::seed_from_u64(seed ^ bits as u64);
        let message: Vec<Symbol> = (0..E14_SYMBOLS)
            .map(|_| alphabet.random(&mut rng))
            .collect();
        let mut sched =
            BernoulliSchedule::new(0.5, StdRng::seed_from_u64(seed ^ 0xE14 ^ bits as u64))
                .expect("valid q");
        let out =
            run_wide_unsynchronized(&message, bits, &mut sched, usize::MAX).expect("valid run");
        // Aligned error rate: among clean + torn samples, how
        // often does the sampled value differ from the message
        // symbol it represents?
        let mut aligned = 0usize;
        let mut errors = 0usize;
        for (value, kind) in out.received.iter().zip(&out.sample_truth) {
            let index = match kind {
                SampleKind::Clean { index } | SampleKind::Torn { index } => *index,
                SampleKind::Stale => continue,
            };
            if index < message.len() {
                aligned += 1;
                if *value != message[index] {
                    errors += 1;
                }
            }
        }
        let aligned_error = if aligned > 0 {
            errors as f64 / aligned as f64
        } else {
            0.0
        };
        let p_d = out.deletion_rate();
        E14Row {
            bits,
            p_d,
            p_i: out.stale_rate(),
            p_s_torn: out.torn_rate(),
            aligned_error,
            naive_upper: bits as f64 * (1.0 - p_d),
            substitution_aware: (1.0 - p_d) * closed_form::mary_symmetric(bits, aligned_error),
        }
    })
    .expect("engine delivered every row")
}

/// Renders E14.
pub fn run(seed: u64) -> String {
    run_cfg(&EngineConfig::serial(seed))
}

/// Renders E14 under the trial engine.
pub fn run_cfg(cfg: &EngineConfig) -> String {
    let mut t = Table::new([
        "N",
        "P_d^",
        "P_i^ (stale)",
        "P_s^ (torn)",
        "aligned err",
        "naive N(1-P_d)",
        "subst-aware cap",
    ]);
    for r in rows_cfg(cfg) {
        t.row([
            r.bits.to_string(),
            f4(r.p_d),
            f4(r.p_i),
            f4(r.p_s_torn),
            f4(r.aligned_error),
            f4(r.naive_upper),
            f4(r.substitution_aware),
        ]);
    }
    format!(
        "\n## E14 — Torn writes: a mechanistic origin for P_s\n\n\
         A Bernoulli(1/2) scheduler; the sender stores one bit per\n\
         operation into an N-bit shared region, the receiver snapshots it\n\
         whole. Wider symbols tear more (P_s grows with N), so the\n\
         substitution-aware capacity grows sublinearly while the naive\n\
         N(1-P_d) envelope keeps climbing — all four Definition 1\n\
         parameters now have scheduler-level causes.\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn torn_rate_grows_with_width() {
        let all = rows(51);
        assert_eq!(all[0].p_s_torn, 0.0, "1-bit region cannot tear");
        assert!(all.last().unwrap().p_s_torn > all[1].p_s_torn, "{all:?}");
    }

    #[test]
    fn substitution_aware_capacity_below_naive() {
        for r in rows(52) {
            assert!(r.substitution_aware <= r.naive_upper + 1e-9, "{r:?}");
        }
    }

    #[test]
    fn sublinear_growth_in_width() {
        // Per-bit efficiency of the substitution-aware capacity falls
        // with width, unlike the naive envelope whose per-bit
        // efficiency is constant.
        let all = rows(53);
        let eff = |r: &E14Row| r.substitution_aware / r.bits as f64;
        assert!(eff(&all[0]) > eff(all.last().unwrap()) + 0.02, "{all:?}");
    }

    #[test]
    fn report_renders() {
        assert!(run(1).contains("E14"));
    }
}
