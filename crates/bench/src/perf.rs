//! In-process micro-benchmark suites for the engine and trace hot
//! paths.
//!
//! Criterion (under `benches/`) is the statistician's harness; these
//! suites are the *regression* harness: a handful of kernels timed
//! with [`Instant`], reported as the median ns/op over a few
//! repetitions, cheap enough to run in CI on every push. `nsc bench`
//! drives them, and `scripts/bench_export` turns the JSON into the
//! committed `BENCH_engine.json` / `BENCH_trace.json` /
//! `BENCH_atlas.json` / `BENCH_coding.json` baselines and checks
//! fresh runs against them.
//!
//! Absolute ns/op is only comparable on the machine recorded in the
//! result's fingerprint. The ratios between kernels of one run —
//! `trial_rng` vs `std_rng`, `trace_write_manual` vs
//! `trace_write_serde`, `atlas_cached` vs `atlas_cold`,
//! `decode_watermark_scratch` vs `decode_watermark_seed` — are
//! comparable anywhere, which is what the CI guards lean on.

use crate::setup::{serialized_trace, synthetic_events};
use nsc_core::engine::{run_campaign, EngineConfig, KernelKind, Mechanism, TrialPlan, TrialRng};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use serde::Serialize;
use serde_json::json;
use std::hint::black_box;
use std::time::Instant;

/// Schema identifier embedded in every suite report.
pub const BENCH_SCHEMA: &str = "nsc-bench/v1";

/// Workload size: `Quick` finishes in well under a second per suite
/// (the CI setting); `Full` runs the criterion-sized inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// Small inputs for smoke runs.
    Quick,
    /// Criterion-sized inputs for committed baselines.
    Full,
}

impl Profile {
    /// Parses a profile name as spelled on the CLI.
    #[must_use]
    pub fn parse(name: &str) -> Option<Profile> {
        match name {
            "quick" => Some(Profile::Quick),
            "full" => Some(Profile::Full),
            _ => None,
        }
    }

    /// The CLI spelling.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Profile::Quick => "quick",
            Profile::Full => "full",
        }
    }

    /// Campaign kernel size: (message length, trials). Trial counts
    /// are at least one full 64-trial lane block, so the bitsliced
    /// rows measure packed lanes rather than a mostly-masked tail.
    fn campaign(self) -> (usize, usize) {
        match self {
            Profile::Quick => (500, 64),
            Profile::Full => (2_000, 128),
        }
    }

    /// Raw-generator kernel size in `next_u64` draws.
    fn rng_draws(self) -> u64 {
        match self {
            Profile::Quick => 1_000_000,
            Profile::Full => 8_000_000,
        }
    }

    /// Trace kernel size in sends (events ≈ 2.3 × sends).
    fn trace_sends(self) -> u64 {
        match self {
            Profile::Quick => 5_000,
            Profile::Full => 40_000,
        }
    }

    /// Atlas grid size: (widths, points per probability axis, trials
    /// per cell, message length).
    fn atlas(self) -> (Vec<u32>, usize, usize, usize) {
        match self {
            Profile::Quick => (vec![1, 2], 2, 16, 64),
            Profile::Full => (vec![1, 2, 4], 3, 32, 256),
        }
    }

    /// Coding kernel size: (data bits per frame, frames per rep).
    fn coding(self) -> (usize, usize) {
        match self {
            Profile::Quick => (64, 2),
            Profile::Full => (200, 4),
        }
    }
}

/// One timed kernel.
#[derive(Debug, Clone, Serialize)]
pub struct BenchResult {
    /// Kernel name, stable across versions — the regression key.
    pub name: String,
    /// What one "op" is: `trial`, `draw`, or `event`.
    pub unit: String,
    /// Operations per repetition.
    pub ops: u64,
    /// Median over the repetitions of (wall ns / ops).
    pub median_ns_per_op: f64,
    /// Heap allocations observed during one extra (untimed) kernel
    /// repetition after the timed ones — the runtime side of the
    /// allocation audit (DESIGN §14). `None` (omitted from JSON)
    /// when [`crate::alloc::CountingAlloc`] is not the running
    /// binary's global allocator; `nsc` registers it, so `nsc bench`
    /// rows always carry a count and `scripts/bench_export` can hold
    /// the scratch kernels to exactly zero.
    ///
    /// The census is thread-scoped: it counts only allocations made
    /// by the bench harness's own (calling) thread, so a kernel that
    /// allocates on worker threads it spawns reports 0 vacuously.
    /// Only single-threaded kernels may be pinned to zero in
    /// `scripts/bench_export` (the currently guarded kernels —
    /// `trial_scratch_unsync`, `trial_rng`, `std_rng`,
    /// `decode_watermark_scratch` — all run on one thread).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub allocs_per_iter: Option<u64>,
}

/// One suite's report: every kernel at one profile.
#[derive(Debug, Clone, Serialize)]
pub struct SuiteReport {
    /// Suite name: `engine`, `trace`, `atlas`, or `coding`.
    pub suite: String,
    /// Profile the kernels ran at.
    pub profile: String,
    /// Recorded repetitions per kernel (after one warm-up).
    pub reps: usize,
    /// Per-kernel medians.
    pub results: Vec<BenchResult>,
}

impl SuiteReport {
    /// Looks up a kernel's median by name.
    #[must_use]
    pub fn median(&self, name: &str) -> Option<f64> {
        self.results
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.median_ns_per_op)
    }
}

/// Identifies the machine a measurement is only comparable on.
#[must_use]
pub fn machine_fingerprint() -> serde_json::Value {
    json!({
        "arch": std::env::consts::ARCH,
        "os": std::env::consts::OS,
        "cores": std::thread::available_parallelism().map_or(1, usize::from),
        "cpu_model": cpu_model(),
    })
}

fn cpu_model() -> String {
    std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|info| {
            info.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1))
                .map(|m| m.trim().to_owned())
        })
        .unwrap_or_else(|| "unknown".to_owned())
}

/// Times `kernel` (which returns its op count) `reps` times after one
/// unrecorded warm-up; the median is the upper median for even
/// `reps`.
fn measure<F>(name: &str, unit: &str, reps: usize, mut kernel: F) -> BenchResult
where
    F: FnMut() -> u64,
{
    let reps = reps.max(1);
    let mut ops = kernel();
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        // nsc-lint: allow(wall-clock, reason = "benchmark sampling measures wall-clock by definition; medians never feed results")
        let start = Instant::now();
        ops = kernel();
        let ns = start.elapsed().as_nanos() as f64;
        samples.push(ns / ops.max(1) as f64);
    }
    samples.sort_by(f64::total_cmp);
    // One extra untimed repetition under the allocation census, after
    // the timed ones, so the count is the kernel's *steady state* —
    // warm-up allocations landed in the unrecorded first call.
    let allocs_per_iter = crate::alloc::oracle_live().then(|| {
        let (reported_ops, census) = crate::alloc::alloc_census(&mut kernel);
        black_box(reported_ops);
        census.allocs
    });
    BenchResult {
        name: name.to_owned(),
        unit: unit.to_owned(),
        ops,
        median_ns_per_op: samples[samples.len() / 2],
        allocs_per_iter,
    }
}

/// The engine suite: serial single-thread campaigns over three §3
/// mechanisms (the `nsc trials` hot path end to end), once per
/// requested execution kernel, plus the raw generators under them and
/// the warm-scratch per-trial row (`trial_scratch_unsync`) whose
/// `allocs_per_iter` the export script pins to zero.
///
/// Row names carry the kernel (`campaign_unsync_scalar`,
/// `campaign_unsync_bitsliced`, …) so `scripts/bench_export` can
/// guard the scalar/bitsliced ratio within one run. Mechanisms
/// without a bitsliced twin simply have no bitsliced row.
///
/// # Panics
///
/// Never in practice: every kernel runs a validated plan.
#[must_use]
pub fn engine_suite(profile: Profile, reps: usize, kernels: &[KernelKind]) -> SuiteReport {
    let (len, trials) = profile.campaign();
    let mut results = Vec::new();
    for (mech_name, mechanism) in [
        ("unsync", Mechanism::Unsynchronized),
        ("counter", Mechanism::Counter),
        ("slotted", Mechanism::Slotted { slot_len: 8 }),
    ] {
        for &kernel in kernels {
            if kernel == KernelKind::Bitsliced && !mechanism.has_bitsliced_kernel() {
                continue;
            }
            let plan = TrialPlan::new(mechanism, 2, len, 0.5);
            let cfg = EngineConfig::serial(7).with_kernel(kernel);
            let name = format!("campaign_{mech_name}_{}", kernel.name());
            results.push(measure(&name, "trial", reps, || {
                let summary = run_campaign(&cfg, &plan, trials).unwrap();
                black_box(summary.rate.mean);
                trials as u64
            }));
        }
    }
    let draws = profile.rng_draws();
    results.push(measure("trial_rng", "draw", reps, || {
        let mut rng = TrialRng::seed_from_u64(1);
        let mut acc = 0u64;
        for _ in 0..draws {
            acc = acc.wrapping_add(rng.next_u64());
        }
        black_box(acc);
        draws
    }));
    results.push(measure("std_rng", "draw", reps, || {
        let mut rng = StdRng::seed_from_u64(1);
        let mut acc = 0u64;
        for _ in 0..draws {
            acc = acc.wrapping_add(rng.next_u64());
        }
        black_box(acc);
        draws
    }));
    // The per-trial scratch path: one warm `TrialScratch` driven
    // straight through `run_unsynchronized_into`, skipping campaign
    // assembly. Its ns/op is the floor under `campaign_unsync_scalar`,
    // and its `allocs_per_iter` must be exactly zero — the scratch
    // kernel `scripts/bench_export` holds to zero allocations.
    {
        use nsc_channel::alphabet::{Alphabet, Symbol};
        use nsc_core::sim::unsync::run_unsynchronized_into;
        use nsc_core::sim::{BernoulliSchedule, NullObserver, TrialScratch};

        let alphabet = Alphabet::new(2).unwrap();
        let mut msg_rng = StdRng::seed_from_u64(5);
        let msg: Vec<Symbol> = (0..len).map(|_| alphabet.random(&mut msg_rng)).collect();
        let mut scratch = TrialScratch::new();
        results.push(measure("trial_scratch_unsync", "trial", reps, move || {
            for t in 0..trials as u64 {
                let mut sched = BernoulliSchedule::new(0.5, StdRng::seed_from_u64(t)).unwrap();
                let outcome = run_unsynchronized_into(
                    &msg,
                    &mut sched,
                    len * 64,
                    &mut NullObserver,
                    &mut scratch,
                )
                .unwrap();
                black_box(outcome.ops);
                scratch.received = outcome.received;
            }
            trials as u64
        }));
    }
    SuiteReport {
        suite: "engine".to_owned(),
        profile: profile.name().to_owned(),
        reps,
        results,
    }
}

/// The trace suite: the manual JSONL writer against the serde
/// rendering it replaced, and the canonical-line reader fast path
/// against the serde fallback.
///
/// # Panics
///
/// Never in practice: the synthetic trace satisfies every format
/// invariant.
#[must_use]
pub fn trace_suite(profile: Profile, reps: usize) -> SuiteReport {
    use nsc_trace::{read_trace, write_trace, TraceHeader};

    let sends = profile.trace_sends();
    let events = synthetic_events(sends);
    let (file, written) = serialized_trace(sends);
    // The same trace with one extra space inside each event object:
    // equally valid JSON, but off the canonical byte shape, so every
    // line takes the reader's serde fallback.
    let fallback_file: String = String::from_utf8(file.clone())
        .unwrap()
        .lines()
        .enumerate()
        .map(|(i, line)| {
            if i == 0 {
                format!("{line}\n")
            } else {
                format!("{{ {}\n", &line[1..])
            }
        })
        .collect();

    let mut results = Vec::new();
    results.push(measure("trace_write_manual", "event", reps, || {
        let mut sink = Vec::with_capacity(file.len());
        write_trace(&mut sink, &TraceHeader::new(2), events.iter().copied()).unwrap();
        black_box(sink.len());
        written
    }));
    results.push(measure("trace_write_serde", "event", reps, || {
        // The pre-optimization writer body: one serde_json string
        // per event.
        let mut sink = Vec::with_capacity(file.len());
        for event in &events {
            sink.extend_from_slice(serde_json::to_string(event).unwrap().as_bytes());
            sink.push(b'\n');
        }
        black_box(sink.len());
        written
    }));
    results.push(measure("trace_read_canonical", "event", reps, || {
        let (_, parsed) = read_trace(file.as_slice()).unwrap();
        black_box(parsed.len()) as u64
    }));
    results.push(measure("trace_read_serde", "event", reps, || {
        let (_, parsed) = read_trace(fallback_file.as_bytes()).unwrap();
        black_box(parsed.len()) as u64
    }));
    SuiteReport {
        suite: "trace".to_owned(),
        profile: profile.name().to_owned(),
        reps,
        results,
    }
}

/// The atlas suite: one small grid campaign computed cold (fresh
/// store, every cell simulated) against the identical campaign served
/// entirely from the cell cache. The `atlas_cached` / `atlas_cold`
/// ratio is the cache's whole value proposition — resume must be much
/// cheaper than recomputation — and the ratio guard in
/// `scripts/bench_export` keeps it honest.
///
/// # Panics
///
/// Never in practice: the spec is validated, and the stores live in
/// fresh per-process directories under `std::env::temp_dir()`.
#[must_use]
pub fn atlas_suite(profile: Profile, reps: usize) -> SuiteReport {
    use nsc_atlas::{AtlasSpec, AtlasStore};
    use nsc_core::sweep::Grid;

    let (widths, points, trials, message_len) = profile.atlas();
    let spec = AtlasSpec {
        widths,
        p_d: Grid::new(0.0, 0.5, points).unwrap(),
        p_i: Grid::new(0.0, 0.5, points).unwrap(),
        mechanism: Mechanism::Counter,
        trials,
        message_len,
        master_seed: 7,
        batch_size: 32,
    };
    let root = std::env::temp_dir().join(format!(
        "nsc-bench-atlas-{}-{}",
        profile.name(),
        std::process::id()
    ));
    let cold_root = root.join("cold");
    let cached_root = root.join("cached");
    let _ = std::fs::remove_dir_all(&root);

    let mut results = Vec::new();
    results.push(measure("atlas_cold", "cell", reps, || {
        let _ = std::fs::remove_dir_all(&cold_root);
        let mut store = AtlasStore::create(&cold_root, 4).unwrap();
        let (report, totals) =
            nsc_atlas::run(&mut store, &spec, 1, KernelKind::Scalar, None).unwrap();
        assert_eq!(totals.cached, 0, "cold rep must simulate every cell");
        black_box(report.totals.cells) as u64
    }));

    // Populate once; every cached rep re-opens the store (paying the
    // shard-load cost resume actually pays) and must simulate nothing.
    let mut seed_store = AtlasStore::create(&cached_root, 4).unwrap();
    nsc_atlas::run(&mut seed_store, &spec, 1, KernelKind::Scalar, None).unwrap();
    drop(seed_store);
    results.push(measure("atlas_cached", "cell", reps, || {
        let mut store = AtlasStore::open(&cached_root).unwrap();
        let (report, totals) =
            nsc_atlas::run(&mut store, &spec, 1, KernelKind::Scalar, None).unwrap();
        assert_eq!(totals.computed, 0, "cached rep must serve every cell");
        black_box(report.totals.cells) as u64
    }));
    let _ = std::fs::remove_dir_all(&root);
    SuiteReport {
        suite: "atlas".to_owned(),
        profile: profile.name().to_owned(),
        reps,
        results,
    }
}

/// The coding suite: the frozen pre-optimization watermark decode
/// chain ([`crate::seed_decode`]) against the current allocating
/// wrapper and the scratch-reused hot path, on identical noisy
/// frames, plus the end-to-end engine-routed coded campaign. The
/// `decode_watermark_scratch` / `decode_watermark_seed` ratio is the
/// DESIGN §13 headline number, and `scripts/bench_export` guards it
/// at ≥3×.
///
/// # Panics
///
/// Never in practice: the deletion rate is mild enough that every
/// pre-built frame decodes, and the campaign plan is validated.
#[must_use]
pub fn coding_suite(profile: Profile, reps: usize) -> SuiteReport {
    use crate::seed_decode::SeedWatermarkDecoder;
    use nsc_channel::alphabet::{Alphabet, Symbol};
    use nsc_channel::di::{DeletionInsertionChannel, DiParams};
    use nsc_coding::campaign::{run_coded_campaign, CodedPlan};
    use nsc_coding::conv::ConvCode;
    use nsc_coding::rate::Codec;
    use nsc_coding::watermark::{WatermarkCode, WatermarkScratch};

    let (k, frames) = profile.coding();
    let (p_d, p_i, p_s) = (0.03, 0.0, 0.0);
    let codec = WatermarkCode::new(ConvCode::standard_half_rate(), 3, 99).unwrap();
    let reference = SeedWatermarkDecoder::standard(3, 99);
    let channel = DeletionInsertionChannel::new(
        Alphabet::binary(),
        DiParams::new(p_d, p_i, p_s).unwrap(),
    );
    // Pre-build the noisy frames so the kernels time decoding only.
    let received: Vec<Vec<bool>> = (0..frames as u64)
        .map(|f| {
            let data =
                nsc_coding::bits::random_bits(k, &mut StdRng::seed_from_u64(f));
            let sent = codec.encode(&data).unwrap();
            let symbols: Vec<Symbol> = sent
                .iter()
                .map(|&b| Symbol::from_index(u32::from(b)))
                .collect();
            let mut rng = StdRng::seed_from_u64(1_000 + f);
            channel
                .transmit(&symbols, &mut rng)
                .received
                .iter()
                .map(|s| s.index() == 1)
                .collect()
        })
        .collect();

    let mut results = Vec::new();
    results.push(measure("decode_watermark_seed", "frame", reps, || {
        for frame in &received {
            black_box(reference.decode(frame, k, p_d, p_i, p_s).unwrap().len());
        }
        frames as u64
    }));
    results.push(measure("decode_watermark_alloc", "frame", reps, || {
        for frame in &received {
            black_box(codec.decode(frame, k, p_d, p_i, p_s).unwrap().len());
        }
        frames as u64
    }));
    let mut scratch = WatermarkScratch::new();
    let mut out = Vec::new();
    results.push(measure("decode_watermark_scratch", "frame", reps, || {
        for frame in &received {
            codec
                .decode_into(&mut scratch, frame, k, p_d, p_i, p_s, &mut out)
                .unwrap();
            black_box(out.len());
        }
        frames as u64
    }));
    let plan = CodedPlan {
        data_bits: k,
        p_d,
        p_i,
        p_s,
    };
    let campaign_codec = Codec::Watermark(codec.clone());
    let cfg = EngineConfig::serial(7);
    results.push(measure("coded_campaign", "trial", reps, || {
        let (summary, _) = run_coded_campaign(&cfg, &campaign_codec, &plan, frames).unwrap();
        black_box(summary.effective_rate);
        frames as u64
    }));
    SuiteReport {
        suite: "coding".to_owned(),
        profile: profile.name().to_owned(),
        reps,
        results,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_report_every_kernel() {
        let engine = engine_suite(
            Profile::Quick,
            1,
            &[KernelKind::Scalar, KernelKind::Bitsliced],
        );
        let names: Vec<&str> = engine.results.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "campaign_unsync_scalar",
                "campaign_unsync_bitsliced",
                "campaign_counter_scalar",
                "campaign_counter_bitsliced",
                "campaign_slotted_scalar",
                "campaign_slotted_bitsliced",
                "trial_rng",
                "std_rng",
                "trial_scratch_unsync"
            ]
        );
        for r in &engine.results {
            assert!(r.median_ns_per_op > 0.0, "{}: {r:?}", r.name);
            assert!(r.ops > 0, "{}: {r:?}", r.name);
            // This test binary does not register CountingAlloc, so
            // the census field must be omitted, not zero.
            assert_eq!(r.allocs_per_iter, None, "{}: {r:?}", r.name);
        }

        let scalar_only = engine_suite(Profile::Quick, 1, &[KernelKind::Scalar]);
        let names: Vec<&str> = scalar_only
            .results
            .iter()
            .map(|r| r.name.as_str())
            .collect();
        assert_eq!(
            names,
            [
                "campaign_unsync_scalar",
                "campaign_counter_scalar",
                "campaign_slotted_scalar",
                "trial_rng",
                "std_rng",
                "trial_scratch_unsync"
            ]
        );

        let trace = trace_suite(Profile::Quick, 1);
        let names: Vec<&str> = trace.results.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "trace_write_manual",
                "trace_write_serde",
                "trace_read_canonical",
                "trace_read_serde"
            ]
        );
        assert!(trace.median("trace_write_manual").unwrap() > 0.0);

        let atlas = atlas_suite(Profile::Quick, 1);
        let names: Vec<&str> = atlas.results.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, ["atlas_cold", "atlas_cached"]);
        for r in &atlas.results {
            assert!(r.median_ns_per_op > 0.0, "{}: {r:?}", r.name);
            assert!(r.ops > 0, "{}: {r:?}", r.name);
            assert_eq!(r.unit, "cell");
        }

        let coding = coding_suite(Profile::Quick, 1);
        let names: Vec<&str> = coding.results.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "decode_watermark_seed",
                "decode_watermark_alloc",
                "decode_watermark_scratch",
                "coded_campaign"
            ]
        );
        for r in &coding.results {
            assert!(r.median_ns_per_op > 0.0, "{}: {r:?}", r.name);
            assert!(r.ops > 0, "{}: {r:?}", r.name);
        }
    }

    #[test]
    fn fingerprint_has_stable_keys() {
        let fp = machine_fingerprint();
        for key in ["arch", "os", "cores", "cpu_model"] {
            assert!(fp.get(key).is_some(), "missing {key}");
        }
        assert!(fp["cores"].as_u64().unwrap() >= 1);
    }

    #[test]
    fn profile_names_round_trip() {
        for p in [Profile::Quick, Profile::Full] {
            assert_eq!(Profile::parse(p.name()), Some(p));
        }
        assert_eq!(Profile::parse("leisurely"), None);
    }
}
