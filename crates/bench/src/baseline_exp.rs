//! E10 — traditional estimators validated (§2 related work).
//!
//! Cross-validates every "traditional" capacity machine this
//! workspace implements: closed forms vs Blahut–Arimoto for the
//! classic DMC families, Millen's finite-state capacity computed two
//! independent ways, Moskowitz's Simple Timing Channel, and the timed
//! Z-channel capacity curve.

use crate::table::{f4, Table};
use nsc_channel::dmc::{closed_form, Dmc};
use nsc_channel::timed_z::TimedZChannel;
use nsc_info::fsm::{FsmChannel, FsmEdge};
use nsc_info::timing::noiseless_timing_capacity;
use serde::Serialize;

/// One row of the DMC validation.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DmcRow {
    /// Family and parameter description.
    pub family: String,
    /// Closed-form capacity.
    pub closed: f64,
    /// Blahut–Arimoto capacity.
    pub blahut: f64,
}

/// Validates the classic DMC families.
pub fn dmc_rows() -> Vec<DmcRow> {
    let mut rows = Vec::new();
    for &p in &[0.05, 0.11, 0.25] {
        rows.push(DmcRow {
            family: format!("BSC(p={p})"),
            closed: closed_form::bsc(p),
            blahut: Dmc::binary_symmetric(p)
                .expect("valid")
                .capacity()
                .expect("converges"),
        });
        rows.push(DmcRow {
            family: format!("erasure(e={p})"),
            closed: closed_form::erasure(1, p),
            blahut: Dmc::binary_erasure(p)
                .expect("valid")
                .capacity()
                .expect("converges"),
        });
        rows.push(DmcRow {
            family: format!("Z(p={p})"),
            closed: closed_form::z_channel(p),
            blahut: Dmc::z_channel(p)
                .expect("valid")
                .capacity()
                .expect("converges"),
        });
        rows.push(DmcRow {
            family: format!("M-ary(N=3, e={p})"),
            closed: closed_form::mary_symmetric(3, p),
            blahut: Dmc::mary_symmetric(3, p)
                .expect("valid")
                .capacity()
                .expect("converges"),
        });
    }
    rows
}

/// One row of the finite-state / timing validation.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FsmRow {
    /// Model description.
    pub model: String,
    /// Capacity via the general spectral-radius bisection.
    pub general: f64,
    /// Capacity via the independent comparator (Shannon root /
    /// adjacency log-spectral-radius).
    pub comparator: f64,
}

/// Validates Millen's finite-state capacity and the Simple Timing
/// Channel against independent solvers.
pub fn fsm_rows() -> Vec<FsmRow> {
    let edge = |from, to, duration: f64| FsmEdge {
        from,
        to,
        duration,
        label: String::new(),
    };
    let mut rows = Vec::new();
    // Moskowitz STC with durations {1, 2}: telegraph capacity.
    let stc = FsmChannel::new(1, vec![edge(0, 0, 1.0), edge(0, 0, 2.0)]).expect("valid");
    rows.push(FsmRow {
        model: "STC durations {1,2}".to_owned(),
        general: stc.capacity().expect("converges"),
        comparator: noiseless_timing_capacity(&[1.0, 2.0]).expect("converges"),
    });
    // STC with durations {1, 2, 3}.
    let stc3 =
        FsmChannel::new(1, vec![edge(0, 0, 1.0), edge(0, 0, 2.0), edge(0, 0, 3.0)]).expect("valid");
    rows.push(FsmRow {
        model: "STC durations {1,2,3}".to_owned(),
        general: stc3.capacity().expect("converges"),
        comparator: noiseless_timing_capacity(&[1.0, 2.0, 3.0]).expect("converges"),
    });
    // Millen FSM, unit times (Fibonacci graph): log2(phi) two ways.
    let fib =
        FsmChannel::new(2, vec![edge(0, 0, 1.0), edge(0, 1, 1.0), edge(1, 0, 1.0)]).expect("valid");
    rows.push(FsmRow {
        model: "Millen FSM (Fibonacci, unit times)".to_owned(),
        general: fib.capacity().expect("converges"),
        comparator: fib.unit_time_capacity().expect("converges"),
    });
    rows
}

/// One row of the timed Z-channel curve.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TimedZRow {
    /// Crossover probability.
    pub p: f64,
    /// Capacity (bits per unit time) with `t0 = 1, t1 = 2`.
    pub rate_t12: f64,
    /// Per-use Z capacity (the `t0 = t1 = 1` comparator).
    pub per_use: f64,
}

/// Computes the timed Z-channel capacity curve.
pub fn timed_z_rows() -> Vec<TimedZRow> {
    [0.0, 0.1, 0.25, 0.5, 0.75]
        .iter()
        .map(|&p| TimedZRow {
            p,
            rate_t12: TimedZChannel::new(p, 1.0, 2.0)
                .expect("valid")
                .capacity()
                .expect("converges"),
            per_use: closed_form::z_channel(p),
        })
        .collect()
}

/// Renders E10.
pub fn run() -> String {
    let mut out =
        String::from("\n## E10 — Traditional estimators validated (related-work baselines)\n");
    let mut t = Table::new(["family", "closed form", "Blahut-Arimoto", "abs diff"]);
    for r in dmc_rows() {
        t.row([
            r.family.clone(),
            f4(r.closed),
            f4(r.blahut),
            format!("{:.1e}", (r.closed - r.blahut).abs()),
        ]);
    }
    out.push_str(&format!("\n### Classic DMC families\n\n{}", t.render()));
    let mut t = Table::new(["model", "general solver", "comparator", "abs diff"]);
    for r in fsm_rows() {
        t.row([
            r.model.clone(),
            f4(r.general),
            f4(r.comparator),
            format!("{:.1e}", (r.general - r.comparator).abs()),
        ]);
    }
    out.push_str(&format!(
        "\n### Millen finite-state / Moskowitz STC (bits per unit time)\n\n{}",
        t.render()
    ));
    let mut t = Table::new(["p", "timed-Z rate (t0=1,t1=2)", "per-use Z capacity"]);
    for r in timed_z_rows() {
        t.row([f4(r.p), f4(r.rate_t12), f4(r.per_use)]);
    }
    out.push_str(&format!(
        "\n### Timed Z-channel (Moskowitz-Greenwald-Kang)\n\n{}",
        t.render()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dmc_closed_forms_match_blahut() {
        for r in dmc_rows() {
            assert!((r.closed - r.blahut).abs() < 1e-6, "{r:?}");
        }
    }

    #[test]
    fn fsm_solvers_agree() {
        for r in fsm_rows() {
            assert!((r.general - r.comparator).abs() < 1e-6, "{r:?}");
        }
    }

    #[test]
    fn timed_z_curve_is_monotone_decreasing() {
        let rows = timed_z_rows();
        for w in rows.windows(2) {
            assert!(w[1].rate_t12 <= w[0].rate_t12 + 1e-9);
            assert!(w[1].per_use <= w[0].per_use + 1e-9);
        }
        // Noiseless endpoint is the telegraph capacity.
        let phi = (1.0 + 5.0_f64.sqrt()) / 2.0;
        assert!((rows[0].rate_t12 - phi.log2()).abs() < 1e-5);
    }

    #[test]
    fn report_renders() {
        let s = run();
        assert!(s.contains("E10"));
        assert!(s.contains("Fibonacci"));
    }
}
