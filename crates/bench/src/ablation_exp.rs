//! E11 & E12 — ablations of the paper's modelling assumptions.
//!
//! * **E11 (burstiness).** Definition 1 is memoryless; real
//!   schedulers misbehave in bursts. We fix the *average* deletion
//!   probability and sweep the mean burst length of a Gilbert–Elliott
//!   channel. Finding: the Theorem 3 feedback capacity `N·(1 − P̄_d)`
//!   is *robust* (the resend protocol only cares about the ergodic
//!   average), while the non-synchronized watermark decoder — whose
//!   lattice assumes i.i.d. events — degrades as bursts lengthen.
//!   Together these bracket how far the paper's i.i.d. assumption
//!   matters: for feedback-synchronized estimation (the paper's main
//!   recipe) it does not; for coding without synchronization it does.
//!
//! * **E12 (imperfect feedback).** The paper assumes a perfect
//!   feedback path (§4.2). We sweep feedback loss and delay for the
//!   counter protocol. Loss degrades the rate smoothly (occasional
//!   current counts still re-synchronize the sender). Constant
//!   *delay* is qualitatively worse: the sender's view lags by a
//!   fixed offset, so every skip re-aligns to the wrong position and
//!   the stream arrives uniformly shifted — reliable rate collapses
//!   to zero. Strong support for the paper's remark that perfection
//!   "is a requirement for deriving the maximum information rate".

use crate::table::{f4, Table};
use nsc_channel::alphabet::{Alphabet, Symbol};
use nsc_channel::burst::GilbertElliottChannel;
use nsc_channel::di::{DiParams, UseOutcome};
use nsc_coding::bits::{bit_error_rate, random_bits};
use nsc_coding::conv::ConvCode;
use nsc_coding::watermark::WatermarkCode;
use nsc_core::engine::{par_map, EngineConfig};
use nsc_core::sim::noisy_feedback::{run_noisy_counter, FeedbackQuality};
use nsc_core::sim::BernoulliSchedule;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

// ---------------------------------------------------------------- E11

/// Average deletion probability held fixed across the burst sweep.
pub const E11_AVG_P_D: f64 = 0.3;
/// Mean burst lengths swept (1 ≈ memoryless).
pub const E11_BURSTS: [f64; 4] = [1.0, 5.0, 20.0, 50.0];
/// Symbol width for the resend part.
pub const E11_BITS: u32 = 4;

/// Average deletion probability of the watermark leg (the codes only
/// operate at mild noise; see E9).
pub const E11_CODING_AVG_P_D: f64 = 0.05;

/// Builds a Gilbert–Elliott deletion channel with the given mean
/// burst length, good/bad deletion rates, and target average.
fn bursty_channel(
    alphabet: Alphabet,
    mean_burst: f64,
    good: f64,
    bad: f64,
    avg: f64,
) -> GilbertElliottChannel {
    let w_bad = (avg - good) / (bad - good);
    let p_bg = (1.0 / mean_burst).min(1.0);
    let p_gb = (w_bad / (1.0 - w_bad) * p_bg).min(1.0);
    GilbertElliottChannel::new(
        alphabet,
        DiParams::deletion_only(good).expect("valid"),
        DiParams::deletion_only(bad).expect("valid"),
        p_gb,
        p_bg,
    )
    .expect("valid transition probabilities")
}

/// One row of E11.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct E11Row {
    /// Mean burst length in channel uses.
    pub mean_burst: f64,
    /// Empirical average deletion rate of the run.
    pub p_d_hat: f64,
    /// Longest observed deletion run.
    pub longest_run: usize,
    /// Resend-protocol goodput (bits/use) over the bursty channel.
    pub resend_goodput: f64,
    /// Theorem 3 prediction from the *average* `P_d`.
    pub resend_theory: f64,
    /// Watermark-code BER decoded with average-parameter lattice.
    pub watermark_ber: f64,
}

/// Runs E11 and returns rows.
pub fn rows_e11(seed: u64) -> Vec<E11Row> {
    rows_e11_cfg(&EngineConfig::serial(seed))
}

/// [`rows_e11`] under the trial engine: burst-length rows evaluate
/// in parallel with identical numbers at any thread count.
pub fn rows_e11_cfg(cfg: &EngineConfig) -> Vec<E11Row> {
    let seed = cfg.master_seed;
    let alphabet = Alphabet::new(E11_BITS).expect("valid width");
    par_map(cfg, &E11_BURSTS, |_, &mean_burst| {
        let ch = bursty_channel(alphabet, mean_burst, 0.05, 0.8, E11_AVG_P_D);
        // Resend protocol over a stateful session.
        let mut rng = StdRng::seed_from_u64(seed);
        let msg: Vec<Symbol> = (0..30_000).map(|_| alphabet.random(&mut rng)).collect();
        let mut session = ch.session(&mut rng);
        let mut uses = 0usize;
        let mut deletions = 0usize;
        let mut longest = 0usize;
        let mut run = 0usize;
        for &sym in &msg {
            loop {
                uses += 1;
                match session.use_once(Some(sym), &mut rng) {
                    UseOutcome::Transmitted { .. } => {
                        run = 0;
                        break;
                    }
                    UseOutcome::Deleted => {
                        deletions += 1;
                        run += 1;
                        longest = longest.max(run);
                    }
                    _ => unreachable!("deletion-only channel with a queued symbol"),
                }
            }
        }
        let goodput = E11_BITS as f64 * msg.len() as f64 / uses as f64;
        // Watermark code over a bursty binary channel at a mild
        // average (the codes only operate there; see E9), same
        // burst-length sweep.
        // Harsh bursts (bad-state p_d = 0.8) at the same mild
        // average: the ergodic rate is identical, only the
        // correlation structure changes.
        let bin = bursty_channel(
            Alphabet::binary(),
            mean_burst,
            0.01,
            0.8,
            E11_CODING_AVG_P_D,
        );
        let code = WatermarkCode::new(ConvCode::nasa_half_rate(), 3, seed ^ 0xE11)
            .expect("valid parameters");
        let avg = bin.average_params().expect("valid");
        let trials = 4u64;
        let mut ber_acc = 0.0;
        for t in 0..trials {
            let data = random_bits(300, &mut StdRng::seed_from_u64(seed ^ (t + 1)));
            let sent = code.encode(&data).expect("non-empty");
            let sent_syms: Vec<Symbol> =
                sent.iter().map(|&b| Symbol::from_index(b as u32)).collect();
            let mut rng2 = StdRng::seed_from_u64(seed ^ (0x100 + t));
            let out = bin.transmit(&sent_syms, &mut rng2);
            let recv: Vec<bool> = out.received.iter().map(|s| s.index() == 1).collect();
            ber_acc += match code.decode(&recv, data.len(), avg.p_d(), 0.0, 0.0) {
                Ok(decoded) => bit_error_rate(&decoded, &data),
                // A failed decode counts as total loss.
                Err(_) => 0.5,
            };
        }
        let ber = ber_acc / trials as f64;
        E11Row {
            mean_burst,
            p_d_hat: deletions as f64 / uses as f64,
            longest_run: longest,
            resend_goodput: goodput,
            resend_theory: E11_BITS as f64 * (1.0 - E11_AVG_P_D),
            watermark_ber: ber,
        }
    })
    .expect("engine delivered every row")
}

/// Renders E11.
pub fn run_e11(seed: u64) -> String {
    run_e11_cfg(&EngineConfig::serial(seed))
}

/// Renders E11 under the trial engine.
pub fn run_e11_cfg(cfg: &EngineConfig) -> String {
    let mut t = Table::new([
        "mean burst",
        "P_d^ (avg)",
        "longest del run",
        "resend b/use",
        "Thm3 N(1-P_d)",
        "watermark BER",
    ]);
    for r in rows_e11_cfg(cfg) {
        t.row([
            f4(r.mean_burst),
            f4(r.p_d_hat),
            r.longest_run.to_string(),
            f4(r.resend_goodput),
            f4(r.resend_theory),
            f4(r.watermark_ber),
        ]);
    }
    format!(
        "\n## E11 — Ablation: bursty (Gilbert-Elliott) deletions at fixed average P_d = {E11_AVG_P_D}\n\n\
         The feedback (resend) capacity depends only on the ergodic average —\n\
         the paper's i.i.d. assumption is harmless for its main recipe. The\n\
         non-synchronized watermark decoder, whose lattice assumes i.i.d.\n\
         events, degrades as bursts lengthen.\n\n{}",
        t.render()
    )
}

// ---------------------------------------------------------------- E12

/// Feedback-quality sweep of E12: `(p_loss, delay)`.
pub const E12_QUALITIES: [(f64, usize); 5] = [(0.0, 0), (0.25, 0), (0.5, 0), (0.0, 4), (0.0, 16)];

/// Symbol width for E12.
pub const E12_BITS: u32 = 4;

/// One row of E12.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct E12Row {
    /// Feedback loss probability.
    pub p_loss: f64,
    /// Feedback delay (receiver operations).
    pub delay: usize,
    /// Stale-fill fraction.
    pub stale_frac: f64,
    /// Symbol error rate (≥ stale·α under perfect feedback; larger
    /// means misalignment).
    pub error_rate: f64,
    /// Reliable rate (bits/op).
    pub reliable_rate: f64,
    /// Sender waits per delivered position.
    pub waits_per_symbol: f64,
}

/// Runs E12 and returns rows.
pub fn rows_e12(seed: u64) -> Vec<E12Row> {
    rows_e12_cfg(&EngineConfig::serial(seed))
}

/// [`rows_e12`] under the trial engine: the shared message is built
/// once, then the feedback-quality rows evaluate in parallel.
pub fn rows_e12_cfg(cfg: &EngineConfig) -> Vec<E12Row> {
    let seed = cfg.master_seed;
    let alphabet = Alphabet::new(E12_BITS).expect("valid width");
    let mut rng = StdRng::seed_from_u64(seed);
    let msg: Vec<Symbol> = (0..50_000).map(|_| alphabet.random(&mut rng)).collect();
    par_map(cfg, &E12_QUALITIES, |_, &(p_loss, delay)| {
        let mut sched =
            BernoulliSchedule::new(0.5, StdRng::seed_from_u64(seed ^ 0xE12)).expect("valid");
        let mut rng2 = StdRng::seed_from_u64(seed ^ delay as u64 ^ (p_loss * 100.0) as u64);
        let out = run_noisy_counter(
            &msg,
            &mut sched,
            FeedbackQuality { p_loss, delay },
            &mut rng2,
            usize::MAX,
        )
        .expect("valid run");
        E12Row {
            p_loss,
            delay,
            stale_frac: out.stale_fills as f64 / out.received.len() as f64,
            error_rate: out.symbol_error_rate(&msg),
            reliable_rate: out.reliable_rate(E12_BITS, &msg).value(),
            waits_per_symbol: out.waits as f64 / out.received.len() as f64,
        }
    })
    .expect("engine delivered every row")
}

/// Renders E12.
pub fn run_e12(seed: u64) -> String {
    run_e12_cfg(&EngineConfig::serial(seed))
}

/// Renders E12 under the trial engine.
pub fn run_e12_cfg(cfg: &EngineConfig) -> String {
    let mut t = Table::new([
        "p_loss",
        "delay",
        "stale frac",
        "err rate",
        "rate b/op",
        "waits/symbol",
    ]);
    for r in rows_e12_cfg(cfg) {
        t.row([
            f4(r.p_loss),
            r.delay.to_string(),
            f4(r.stale_frac),
            f4(r.error_rate),
            f4(r.reliable_rate),
            f4(r.waits_per_symbol),
        ]);
    }
    format!(
        "\n## E12 — Ablation: the counter protocol under imperfect feedback (N = {E12_BITS}, q = 0.5)\n\n\
         §4.2 assumes a perfect feedback path. Feedback *loss* degrades the\n\
         rate smoothly (surviving current counts re-synchronize the sender);\n\
         constant feedback *delay* shifts every skip by a fixed offset and\n\
         destroys alignment outright (error rate near 1 - 2^-N, reliable\n\
         rate 0) — perfection is indeed required for the maximum rate.\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e11_resend_is_burst_robust() {
        let rows = rows_e11(31);
        for r in &rows {
            // Average deletion rate is preserved across burst lengths.
            assert!((r.p_d_hat - E11_AVG_P_D).abs() < 0.05, "{r:?}");
            // Goodput tracks the ergodic-average theory within 5%.
            assert!(
                (r.resend_goodput - r.resend_theory).abs() / r.resend_theory < 0.05,
                "{r:?}"
            );
        }
        // Burst runs genuinely lengthen.
        assert!(rows.last().unwrap().longest_run > 4 * rows[0].longest_run);
    }

    #[test]
    fn e11_watermark_degrades_with_bursts() {
        let rows = rows_e11(32);
        let first = rows.first().unwrap().watermark_ber;
        let last = rows.last().unwrap().watermark_ber;
        assert!(
            last > first + 0.02,
            "expected degradation: first {first}, last {last}"
        );
    }

    #[test]
    fn e12_perfect_feedback_obeys_alpha_law() {
        let rows = rows_e12(33);
        let clean = &rows[0];
        let alpha = nsc_core::bounds::alpha(E12_BITS);
        assert!(
            (clean.error_rate - alpha * clean.stale_frac).abs() < 0.02,
            "{clean:?}"
        );
    }

    #[test]
    fn e12_imperfection_costs_rate() {
        let rows = rows_e12(34);
        let clean_rate = rows[0].reliable_rate;
        for r in &rows[1..] {
            assert!(
                r.reliable_rate <= clean_rate + 0.02,
                "clean {clean_rate}, {r:?}"
            );
        }
        // Strong delay visibly hurts.
        let delayed = rows
            .iter()
            .find(|r| r.delay == 16)
            .expect("delay-16 row present");
        assert!(delayed.reliable_rate < clean_rate * 0.9, "{delayed:?}");
    }

    #[test]
    fn reports_render() {
        assert!(run_e11(1).contains("E11"));
        assert!(run_e12(1).contains("E12"));
    }
}
