//! The pre-optimization watermark decode path, preserved as the
//! `coding` bench suite's reference kernel.
//!
//! This is a faithful copy of the decode chain as it stood before
//! the allocation-free banded rewrite (DESIGN §13): a `Vec<Row>`
//! drift lattice with per-row heap allocation and bounds-checked
//! `get`/`add` banded access, a backward pass that allocates a `vals`
//! buffer per row, and a Viterbi decoder that allocates its survivor
//! matrix and per-branch output vectors per call. The `coding` suite
//! times it against `WatermarkCode::decode_into` on the same frames,
//! and `scripts/bench_export` guards the ratio — the same pattern as
//! `trace_write_serde` vs `trace_write_manual`.
//!
//! Keep the body in sync with nothing: it is intentionally frozen.

use nsc_coding::CodingError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A banded row of lattice probabilities: `probs[j - lo]` holds the
/// value for received-position `j`.
#[derive(Debug, Clone)]
struct Row {
    lo: usize,
    probs: Vec<f64>,
}

impl Row {
    fn zeros(lo: usize, hi: usize) -> Row {
        Row {
            lo,
            probs: vec![0.0; hi.saturating_sub(lo) + 1],
        }
    }

    #[inline]
    fn get(&self, j: usize) -> f64 {
        if j < self.lo || j >= self.lo + self.probs.len() {
            0.0
        } else {
            self.probs[j - self.lo]
        }
    }

    #[inline]
    fn add(&mut self, j: usize, v: f64) {
        if j >= self.lo && j < self.lo + self.probs.len() {
            self.probs[j - self.lo] += v;
        }
    }

    fn normalize(&mut self) -> f64 {
        let sum: f64 = self.probs.iter().sum();
        if sum > 0.0 {
            for p in &mut self.probs {
                *p /= sum;
            }
        }
        sum
    }
}

/// The effective probability that a received data-carrying bit
/// differs from the watermark bit.
fn effective_flip(f: f64, p_s: f64) -> f64 {
    f * (1.0 - p_s) + (1.0 - f) * p_s
}

/// The seed watermark decoder: sparse watermark inner code over a
/// rate-1/v convolutional outer code, decoded with the frozen
/// pre-optimization row-allocating lattice and allocating Viterbi.
#[derive(Debug, Clone)]
pub struct SeedWatermarkDecoder {
    constraint: u32,
    generators: Vec<u32>,
    block_len: usize,
    watermark_seed: u64,
}

impl SeedWatermarkDecoder {
    /// A decoder matching `WatermarkCode::new(standard_half_rate(),
    /// block_len, watermark_seed)`.
    #[must_use]
    pub fn standard(block_len: usize, watermark_seed: u64) -> Self {
        SeedWatermarkDecoder {
            constraint: 3,
            generators: vec![0o7, 0o5],
            block_len,
            watermark_seed,
        }
    }

    fn outputs_per_input(&self) -> usize {
        self.generators.len()
    }

    fn tail_bits(&self) -> usize {
        (self.constraint - 1) as usize
    }

    fn coded_len(&self, k: usize) -> usize {
        (k + self.tail_bits()) * self.outputs_per_input()
    }

    /// Transmitted frame length for `k` data bits.
    #[must_use]
    pub fn frame_len(&self, k: usize) -> usize {
        self.coded_len(k) * self.block_len
    }

    /// Decodes a received stream exactly like the seed
    /// `WatermarkCode::decode` did.
    ///
    /// # Errors
    ///
    /// Propagates lattice and Viterbi errors, as the seed did.
    pub fn decode(
        &self,
        received: &[bool],
        k: usize,
        p_d: f64,
        p_i: f64,
        p_s: f64,
    ) -> Result<Vec<bool>, CodingError> {
        let frame_len = self.frame_len(k);
        let mut rng = StdRng::seed_from_u64(self.watermark_seed);
        let w: Vec<bool> = (0..frame_len).map(|_| rng.gen::<bool>()).collect();
        let priors: Vec<f64> = (0..frame_len)
            .map(|i| if i % self.block_len == 0 { 0.5 } else { 0.0 })
            .collect();
        let post = seed_posteriors(p_d, p_i, p_s, &w, &priors, received)?;
        let coded_len = self.coded_len(k);
        let mut llrs = Vec::with_capacity(coded_len);
        for b in 0..coded_len {
            let p1 = post[b * self.block_len].clamp(1e-12, 1.0 - 1e-12);
            llrs.push(((1.0 - p1) / p1).ln());
        }
        self.decode_soft(&llrs)
    }

    fn output_for(&self, state: u32, input: bool) -> Vec<bool> {
        let reg = (state << 1) | input as u32;
        self.generators
            .iter()
            .map(|&g| (reg & g).count_ones() % 2 == 1)
            .collect()
    }

    /// The seed soft Viterbi: per-step survivor rows and per-branch
    /// output vectors allocated on the heap.
    fn decode_soft(&self, llrs: &[f64]) -> Result<Vec<bool>, CodingError> {
        let v = self.outputs_per_input();
        if !llrs.len().is_multiple_of(v) || llrs.len() / v < self.tail_bits() {
            return Err(CodingError::BadLength {
                got: llrs.len(),
                need: format!("a positive multiple of {v} covering the tail"),
            });
        }
        let steps = llrs.len() / v;
        let n_states = 1usize << (self.constraint - 1);
        let neg_inf = f64::NEG_INFINITY;
        let mut metric = vec![neg_inf; n_states];
        metric[0] = 0.0;
        let mut survivors: Vec<Vec<(u32, bool)>> = Vec::with_capacity(steps);
        let mask = (n_states - 1) as u32;
        for t in 0..steps {
            let group = &llrs[t * v..(t + 1) * v];
            let mut next = vec![neg_inf; n_states];
            let mut surv = vec![(0u32, false); n_states];
            for (s, &m) in metric.iter().enumerate() {
                if m == neg_inf {
                    continue;
                }
                for input in [false, true] {
                    let out = self.output_for(s as u32, input);
                    let branch: f64 = out
                        .iter()
                        .zip(group)
                        .map(|(&b, &l)| if b { -l } else { l })
                        .sum();
                    let ns = (((s as u32) << 1) | input as u32) & mask;
                    let cand = m + branch;
                    if cand > next[ns as usize] {
                        next[ns as usize] = cand;
                        surv[ns as usize] = (s as u32, input);
                    }
                }
            }
            metric = next;
            survivors.push(surv);
        }
        let mut state = 0u32;
        let mut bits = Vec::with_capacity(steps);
        for t in (0..steps).rev() {
            let (prev, input) = survivors[t][state as usize];
            bits.push(input);
            state = prev;
        }
        bits.reverse();
        bits.truncate(steps - self.tail_bits());
        Ok(bits)
    }
}

/// The seed forward–backward pass: one heap-allocated `Row` per
/// lattice row per pass, plus a fresh `vals` buffer per backward row.
#[allow(clippy::too_many_lines)]
fn seed_posteriors(
    p_d: f64,
    p_i: f64,
    p_s: f64,
    watermark: &[bool],
    priors: &[f64],
    received: &[bool],
) -> Result<Vec<f64>, CodingError> {
    let n = watermark.len();
    let m = received.len();
    let max_ins = if p_i == 0.0 {
        0
    } else {
        let mut k = 1usize;
        let mut mass = p_i;
        while mass > 1e-9 && k < 24 {
            mass *= p_i;
            k += 1;
        }
        k
    };
    let slack = 12usize;
    if m > n * (max_ins + 1) {
        return Err(CodingError::DecodeFailure(format!(
            "received {m} bits but at most {} are reachable",
            n * (max_ins + 1)
        )));
    }
    let diffusion = (4.0 * (n as f64 * (p_d + p_i)).sqrt()).ceil() as usize;
    let hw = n.abs_diff(m) + diffusion + slack;
    let band = |i: usize| {
        let center = (i * m + n / 2) / n;
        let lo = center.saturating_sub(hw);
        let hi = (center + hw).min(m);
        (lo, hi)
    };
    let p_t = 1.0 - p_d - p_i;
    let ins_weight: Vec<f64> = (0..=max_ins)
        .scan(1.0f64, |acc, _| {
            let w = *acc;
            *acc *= p_i * 0.5;
            Some(w)
        })
        .collect();

    // ---- Forward pass ----
    let mut alpha: Vec<Row> = Vec::with_capacity(n + 1);
    {
        let (lo, hi) = band(0);
        let mut row = Row::zeros(lo, hi);
        row.add(0, 1.0);
        alpha.push(row);
    }
    for i in 0..n {
        let (lo, hi) = band(i + 1);
        let mut next = Row::zeros(lo, hi);
        let f_eff = effective_flip(priors[i], p_s);
        let cur = &alpha[i];
        for (off, &a) in cur.probs.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            let j = cur.lo + off;
            for (k, &wk) in ins_weight.iter().enumerate() {
                if j + k > m {
                    break;
                }
                let base = a * wk;
                next.add(j + k, base * p_d);
                if j + k < m {
                    let e = if received[j + k] == watermark[i] {
                        1.0 - f_eff
                    } else {
                        f_eff
                    };
                    next.add(j + k + 1, base * p_t * e);
                }
            }
        }
        next.normalize();
        alpha.push(next);
    }
    if alpha[n].get(m) == 0.0 {
        return Err(CodingError::DecodeFailure(
            "no drift path reaches the received length (widen the band or check parameters)"
                .to_owned(),
        ));
    }

    // ---- Backward pass ----
    let mut beta: Vec<Row> = (0..=n)
        .map(|i| {
            let (lo, hi) = band(i);
            Row::zeros(lo, hi)
        })
        .collect();
    beta[n].add(m, 1.0);
    for i in (0..n).rev() {
        let f_eff = effective_flip(priors[i], p_s);
        let (lo, hi) = (beta[i].lo, beta[i].lo + beta[i].probs.len() - 1);
        let mut vals = vec![0.0f64; hi - lo + 1];
        for (idx, v) in vals.iter_mut().enumerate() {
            let j = lo + idx;
            let mut acc = 0.0;
            for (k, &wk) in ins_weight.iter().enumerate() {
                if j + k > m {
                    break;
                }
                acc += wk * p_d * beta[i + 1].get(j + k);
                if j + k < m {
                    let e = if received[j + k] == watermark[i] {
                        1.0 - f_eff
                    } else {
                        f_eff
                    };
                    acc += wk * p_t * e * beta[i + 1].get(j + k + 1);
                }
            }
            *v = acc;
        }
        beta[i].probs.copy_from_slice(&vals);
        beta[i].normalize();
    }

    // ---- Posteriors ----
    let mut post = Vec::with_capacity(n);
    for i in 0..n {
        let f = priors[i];
        let cur = &alpha[i];
        let nxt = &beta[i + 1];
        let mut mass = [0.0f64; 2];
        for (off, &a) in cur.probs.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            let j = cur.lo + off;
            for (k, &wk) in ins_weight.iter().enumerate() {
                if j + k > m {
                    break;
                }
                let base = a * wk;
                let del = base * p_d * nxt.get(j + k);
                mass[0] += del * (1.0 - f);
                mass[1] += del * f;
                if j + k < m {
                    let b = nxt.get(j + k + 1);
                    if b > 0.0 {
                        let tx = base * p_t * b;
                        let e0 = if received[j + k] == watermark[i] {
                            1.0 - p_s
                        } else {
                            p_s
                        };
                        let e1 = if received[j + k] == watermark[i] {
                            p_s
                        } else {
                            1.0 - p_s
                        };
                        mass[0] += tx * (1.0 - f) * e0;
                        mass[1] += tx * f * e1;
                    }
                }
            }
        }
        let total = mass[0] + mass[1];
        post.push(if total > 0.0 { mass[1] / total } else { f });
    }
    Ok(post)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsc_coding::conv::ConvCode;
    use nsc_coding::watermark::WatermarkCode;

    #[test]
    fn seed_decoder_matches_current_codec_on_clean_frames() {
        // The frozen reference must decode frames produced by the
        // current encoder: same watermark stream, same framing.
        let codec = WatermarkCode::new(ConvCode::standard_half_rate(), 3, 99).unwrap();
        let seed = SeedWatermarkDecoder::standard(3, 99);
        let data: Vec<bool> = (0..40).map(|i| i % 3 == 0).collect();
        let sent = codec.encode(&data).unwrap();
        assert_eq!(seed.frame_len(40), sent.len());
        assert_eq!(seed.decode(&sent, 40, 0.0, 0.0, 0.0).unwrap(), data);
        assert_eq!(
            codec.decode(&sent, 40, 0.0, 0.0, 0.0).unwrap(),
            seed.decode(&sent, 40, 0.0, 0.0, 0.0).unwrap()
        );
    }
}
