//! E13 — the §4.3 recipe applied to a covert *timing* channel.
//!
//! The paper's correction is stated for any covert channel whose
//! physical capacity a "traditional method" can estimate. E8 applies
//! it to the storage channel; this experiment applies it to the
//! scheduler-borne timing channel of `nsc_sched::timing` (a timed
//! Z-channel in the sense of the paper's §2 baselines), sweeping the
//! sender's synchronization ability (`poll_prob`) and the scheduling
//! policy.

use crate::table::{f4, Table};
use nsc_sched::mitigation::PolicyKind;
use nsc_sched::timing::{run_timing_channel, TimingConfig, TimingMeasurement};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

/// Poll probabilities swept.
pub const E13_POLL: [f64; 4] = [1.0, 0.6, 0.3, 0.1];

/// Policies compared.
pub const E13_POLICIES: [PolicyKind; 3] = [
    PolicyKind::RoundRobin,
    PolicyKind::Lottery,
    PolicyKind::Mlfq,
];

/// Message bits per run.
pub const E13_BITS: usize = 20_000;

/// One row of E13.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct E13Row {
    /// Policy evaluated.
    pub policy: PolicyKind,
    /// Sender poll probability.
    pub poll: f64,
    /// The measurement (rates + capacities).
    pub m: TimingMeasurement,
}

/// Runs E13 and returns rows.
pub fn rows(seed: u64) -> Vec<E13Row> {
    let mut rng = StdRng::seed_from_u64(seed);
    let message: Vec<bool> = (0..E13_BITS).map(|_| rng.gen()).collect();
    let mut out = Vec::new();
    for &policy in &E13_POLICIES {
        for &poll in &E13_POLL {
            let config = TimingConfig {
                policy,
                poll_prob: poll,
                background: 1,
                bg_ready: 0.5,
            };
            let mut run_rng = StdRng::seed_from_u64(seed ^ (poll * 100.0) as u64);
            let run = run_timing_channel(&message, &config, usize::MAX, &mut run_rng)
                .expect("valid config");
            let m = run.measure(2).expect("non-empty run");
            out.push(E13Row { policy, poll, m });
        }
    }
    out
}

/// Renders E13.
pub fn run(seed: u64) -> String {
    let mut t = Table::new([
        "policy",
        "poll",
        "P_d^",
        "P_i^",
        "P_s^",
        "traditional b/q",
        "corrected b/q",
    ]);
    for r in rows(seed) {
        t.row([
            r.policy.name().to_owned(),
            f4(r.poll),
            f4(r.m.p_d),
            f4(r.m.p_i),
            f4(r.m.p_s),
            f4(r.m.traditional_capacity),
            f4(r.m.corrected_capacity),
        ]);
    }
    format!(
        "\n## E13 — The §4.3 recipe on a covert timing channel\n\n\
         The sender stretches the receiver's scheduling gaps (a timed\n\
         Z-channel); its only synchronization resource is polling the\n\
         receiver's progress with probability `poll` per quantum. Weaker\n\
         polling raises the measured deletion/insertion rates, and the\n\
         corrected capacity C(1 - P_d) diverges from the traditional one.\n\
         One interactive background process; 20k message bits per row.\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corrected_capacity_formula_holds() {
        for r in rows(41) {
            assert!(
                (r.m.corrected_capacity - r.m.traditional_capacity * (1.0 - r.m.p_d)).abs() < 1e-12,
                "{r:?}"
            );
            assert!(r.m.corrected_capacity <= r.m.traditional_capacity + 1e-12);
        }
    }

    #[test]
    fn weaker_polling_increases_deletions() {
        let all = rows(42);
        for &policy in &E13_POLICIES {
            let per_policy: Vec<&E13Row> = all.iter().filter(|r| r.policy == policy).collect();
            let first = per_policy.first().unwrap(); // poll = 1.0
            let last = per_policy.last().unwrap(); // poll = 0.1
            assert!(
                last.m.p_d > first.m.p_d + 0.05,
                "{policy:?}: {} vs {}",
                first.m.p_d,
                last.m.p_d
            );
        }
    }

    #[test]
    fn report_renders() {
        let s = run(1);
        assert!(s.contains("E13"));
        assert!(s.contains("round-robin"));
    }
}
