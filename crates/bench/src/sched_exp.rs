//! E8 — the scheduler study (§3.1 + §4.3 Remarks).
//!
//! Measures `P_d`/`P_i` for the shared-variable covert channel under
//! every scheduling policy and several background loads, and reports
//! the paper's corrected capacity next to the traditional
//! (synchronous-model) estimate — quantifying how much each scheduler
//! design mitigates the channel.

use crate::table::{f4, Table};
use nsc_sched::mitigation::{evaluate_policy, MitigationReport, PolicyKind};
use nsc_sched::system::WorkloadSpec;

/// Background loads swept: `(processes, ready probability)`.
pub const LOADS: [(usize, f64); 3] = [(0, 1.0), (2, 1.0), (4, 0.5)];

/// Symbol width of the shared variable.
pub const E8_BITS: u32 = 4;

/// Quanta per run.
pub const E8_QUANTA: usize = 60_000;

/// Runs E8 and returns `(load, reports)` pairs.
pub fn rows(seed: u64) -> Vec<((usize, f64), Vec<MitigationReport>)> {
    LOADS
        .iter()
        .map(|&(n, ready)| {
            let spec = WorkloadSpec::covert_pair().with_background(n, ready);
            let reports = PolicyKind::ALL
                .iter()
                .map(|&k| {
                    evaluate_policy(k, &spec, E8_BITS, E8_QUANTA, seed).expect("valid workload")
                })
                .collect();
            ((n, ready), reports)
        })
        .collect()
}

/// The priority-differentiated workload: a high-priority sender that
/// blocks 40% of the time (so fixed priority does not degenerate to
/// round-robin), interactive background. This is where priority and
/// MLFQ policies genuinely differ from the fair family.
pub fn priority_rows(seed: u64) -> Vec<MitigationReport> {
    let spec = WorkloadSpec::covert_pair()
        .map_sender(|p| p.with_priority(5).with_ready_prob(0.6))
        .with_background(2, 0.3);
    PolicyKind::ALL
        .iter()
        .map(|&k| evaluate_policy(k, &spec, E8_BITS, E8_QUANTA, seed).expect("valid workload"))
        .collect()
}

/// Renders E8.
pub fn run(seed: u64) -> String {
    let mut out = String::from(
        "\n## E8 — Scheduler study: measured P_d/P_i and corrected capacity (N = 4)\n\n\
         The covert pair writes/reads a shared variable; the scheduler decides\n\
         who runs. 'Achievable' is Theorem 5's lower bound at the measured\n\
         rates; 'upper' is N*(1 - P_d). A traditional synchronous analysis\n\
         would report N = 4 bits per operation pair regardless of policy —\n\
         the correction is the point of the paper.\n",
    );
    let render = |reports: &[MitigationReport]| {
        let mut t = Table::new([
            "policy",
            "P_d^",
            "P_i^",
            "covert share",
            "achievable b/slot",
            "upper b/slot",
        ]);
        for r in reports {
            t.row([
                r.policy.name().to_owned(),
                f4(r.measurement.p_d),
                f4(r.measurement.p_i),
                f4(r.measurement.covert_share()),
                f4(r.achievable.value()),
                f4(r.upper_bound.value()),
            ]);
        }
        t.render()
    };
    for ((n, ready), reports) in rows(seed) {
        out.push_str(&format!(
            "\n### background: {n} processes (ready prob {ready})\n\n{}",
            render(&reports)
        ));
    }
    out.push_str(&format!(
        "\n### priority-differentiated workload (sender prio 5, ready 0.6; interactive background)\n\n{}",
        render(&priority_rows(seed))
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_is_clean_without_background_noise() {
        let all = rows(11);
        let (_, reports) = &all[0];
        let rr = reports
            .iter()
            .find(|r| r.policy == PolicyKind::RoundRobin)
            .expect("round robin present");
        assert_eq!(rr.measurement.p_d, 0.0);
        assert!((rr.achievable.value() - E8_BITS as f64).abs() < 1e-9);
    }

    #[test]
    fn randomized_policies_reduce_capacity() {
        let all = rows(12);
        for (_, reports) in &all {
            let rr = reports
                .iter()
                .find(|r| r.policy == PolicyKind::RoundRobin)
                .expect("present");
            let lot = reports
                .iter()
                .find(|r| r.policy == PolicyKind::Lottery)
                .expect("present");
            assert!(
                lot.achievable.value() < rr.achievable.value() + 1e-9,
                "lottery should not beat round-robin"
            );
        }
    }

    #[test]
    fn bounds_ordering_holds_everywhere() {
        for (_, reports) in rows(13) {
            for r in reports {
                assert!(r.achievable.value() <= r.upper_bound.value() + 1e-9);
                assert!(r.upper_bound.value() <= E8_BITS as f64 + 1e-9);
            }
        }
    }

    #[test]
    fn report_renders_all_loads() {
        let s = run(1);
        assert!(s.contains("E8"));
        assert_eq!(s.matches("### background").count(), LOADS.len());
        assert!(s.contains("priority-differentiated"));
    }

    #[test]
    fn priority_workload_differentiates_policies() {
        let reports = priority_rows(17);
        let get = |k: PolicyKind| {
            reports
                .iter()
                .find(|r| r.policy == k)
                .expect("policy present")
        };
        // A blocking high-priority sender under fixed priority still
        // overruns the receiver whenever it is ready: the channel is
        // noisy, unlike the bare round-robin case.
        let fp = get(PolicyKind::FixedPriority);
        assert!(fp.measurement.p_d > 0.1, "{fp:?}");
        // Every policy respects the bound ordering.
        for r in &reports {
            assert!(r.achievable.value() <= r.upper_bound.value() + 1e-9);
        }
    }
}
