//! E2 & E5 — Theorem 1's erasure bound and the equation (6)–(7)
//! convergence study.

use crate::table::{f4, Table};
use nsc_channel::alphabet::{Alphabet, Symbol};
use nsc_channel::di::{DeletionInsertionChannel, DiParams};
use nsc_core::bounds::{capacity_bounds, erasure_upper_bound};
use nsc_core::protocols::resend::run_resend;
use nsc_info::blahut::{blahut_arimoto, BlahutOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

/// The `N`-bit erasure channel as an explicit DMC: `2^N` inputs,
/// `2^N + 1` outputs (the last being the erasure flag).
pub fn erasure_dmc(bits: u32, e: f64) -> Vec<Vec<f64>> {
    let m = 1usize << bits;
    let mut w = vec![vec![0.0; m + 1]; m];
    for (i, row) in w.iter_mut().enumerate() {
        row[i] = 1.0 - e;
        row[m] = e;
    }
    w
}

/// One row of E2.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct E2Row {
    /// Deletion probability.
    pub p_d: f64,
    /// Equation (1): `N (1 − P_d)`.
    pub formula: f64,
    /// Blahut–Arimoto capacity of the matched erasure DMC.
    pub blahut: f64,
    /// Simulated resend-protocol goodput over the deletion channel
    /// with feedback (Theorem 3 says this approaches the bound).
    pub simulated: f64,
}

/// E2 sweep values.
pub const P_D_SWEEP: [f64; 6] = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5];

/// Symbol width used in E2.
pub const E2_BITS: u32 = 2;

/// Runs E2 and returns rows.
pub fn rows_e2(seed: u64) -> Vec<E2Row> {
    let alphabet = Alphabet::new(E2_BITS).expect("2-bit alphabet valid");
    P_D_SWEEP
        .iter()
        .map(|&p_d| {
            let formula = erasure_upper_bound(E2_BITS, p_d)
                .expect("valid probability")
                .value();
            let blahut = blahut_arimoto(&erasure_dmc(E2_BITS, p_d), &BlahutOptions::default())
                .expect("erasure DMC converges")
                .capacity;
            let channel = DeletionInsertionChannel::new(
                alphabet,
                DiParams::deletion_only(p_d).expect("valid"),
            );
            let mut rng = StdRng::seed_from_u64(seed);
            let message: Vec<Symbol> = (0..30_000).map(|_| alphabet.random(&mut rng)).collect();
            let out = run_resend(&channel, &message, &mut rng).expect("valid protocol setup");
            E2Row {
                p_d,
                formula,
                blahut,
                simulated: out.goodput(E2_BITS).value(),
            }
        })
        .collect()
}

/// Runs E2 and renders the report.
pub fn run_e2(seed: u64) -> String {
    let mut t = Table::new(["p_d", "N(1-p_d)", "Blahut(erasure)", "resend goodput"]);
    for r in rows_e2(seed) {
        t.row([f4(r.p_d), f4(r.formula), f4(r.blahut), f4(r.simulated)]);
    }
    format!(
        "\n## E2 — Theorem 1/3: erasure upper bound, three ways (N = {E2_BITS} bits)\n\n\
         Equation (1) vs Blahut–Arimoto on the matched erasure DMC vs the\n\
         measured goodput of the Theorem 3 resend protocol (30k symbols).\n\n{}",
        t.render()
    )
}

/// One row of E5 (equations (6)–(7)).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct E5Row {
    /// `p = P_d = P_i`.
    pub p: f64,
    /// `C_lower / C_upper` per symbol width.
    pub ratios: Vec<(u32, f64)>,
}

/// Symbol widths for the convergence table.
pub const N_SWEEP: [u32; 5] = [1, 2, 4, 8, 16];
/// Probabilities for the convergence table.
pub const P_SWEEP: [f64; 3] = [0.01, 0.1, 0.3];

/// Runs E5 and returns rows.
pub fn rows_e5() -> Vec<E5Row> {
    P_SWEEP
        .iter()
        .map(|&p| E5Row {
            p,
            ratios: N_SWEEP
                .iter()
                .map(|&n| {
                    (
                        n,
                        capacity_bounds(n, p, p)
                            .expect("valid parameters")
                            .tightness(),
                    )
                })
                .collect(),
        })
        .collect()
}

/// Runs E5 and renders the report.
pub fn run_e5() -> String {
    let mut header = vec!["p=P_d=P_i".to_owned()];
    header.extend(N_SWEEP.iter().map(|n| format!("N={n}")));
    let mut t = Table::new(header);
    for r in rows_e5() {
        let mut row = vec![f4(r.p)];
        row.extend(r.ratios.iter().map(|(_, ratio)| f4(*ratio)));
        t.row(row);
    }
    format!(
        "\n## E5 — Equations (6)-(7): C_lower/C_upper convergence as N grows\n\n\
         With P_i = P_d, the Theorem 5 lower bound approaches the Theorem 4\n\
         upper bound as the symbol width N increases (limit = 1).\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erasure_dmc_rows_are_stochastic() {
        for row in erasure_dmc(3, 0.3) {
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn e2_three_ways_agree() {
        for r in rows_e2(5) {
            assert!((r.formula - r.blahut).abs() < 1e-6, "{r:?}");
            assert!(
                (r.simulated - r.formula).abs() <= 0.02 * r.formula.max(0.05),
                "{r:?}"
            );
            // Simulation respects the bound up to sampling noise.
            assert!(r.simulated <= r.formula * 1.03 + 1e-9);
        }
    }

    #[test]
    fn e5_ratios_monotone_and_convergent() {
        for r in rows_e5() {
            for pair in r.ratios.windows(2) {
                assert!(pair[1].1 >= pair[0].1 - 1e-12, "{r:?}");
            }
            assert!(r.ratios.last().unwrap().1 > 0.9);
        }
    }

    #[test]
    fn reports_render() {
        assert!(run_e2(1).contains("E2"));
        assert!(run_e5().contains("E5"));
    }
}
