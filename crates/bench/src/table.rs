//! Minimal fixed-width table formatting for experiment reports.

/// A simple text table builder producing GitHub-flavoured markdown.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    ///
    /// # Panics
    ///
    /// Panics when the row width differs from the header width —
    /// a harness bug, not a runtime condition.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as padded markdown.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (cell, w) in cells.iter().zip(widths) {
                line.push_str(&format!(" {cell:<w$} |"));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{:-<1$}|", "", w + 2));
        }
        sep.push('\n');
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        let _ = cols;
        out
    }
}

/// Formats a float with 4 decimal places.
pub fn f4(x: f64) -> String {
    format!("{x:.4}")
}

/// Formats a float with 2 decimal places.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new(["a", "long-header"]);
        t.row(["1", "2"]);
        t.row(["333", "4"]);
        let s = t.render();
        assert!(s.contains("| a   | long-header |"));
        assert!(s.lines().count() == 4);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f4(0.123456), "0.1235");
        assert_eq!(f2(1.0), "1.00");
    }
}
