//! E3, E4, E6, E7 — protocol experiments.
//!
//! * **E3** (Theorem 3): the resend protocol's goodput over a pure
//!   deletion channel with feedback converges to `N·(1 − p_d)`.
//! * **E4** (Theorem 5 / Appendix A / Figure 5): the counter protocol
//!   converts scheduler-induced insertions into substitutions on a
//!   synchronous M-ary symmetric channel; measured reliable rates
//!   track `C_conv`.
//! * **E6** (Figure 1 / §3.2): the two-sync-variable handshake wastes
//!   time exactly as predicted (`1/q + 1/(1−q)` operations per
//!   symbol under a Bernoulli(q) scheduler).
//! * **E7** (Figures 3–4): mechanism comparison — perfect feedback
//!   vs a common event source vs nothing.

use crate::table::{f4, Table};
use nsc_channel::alphabet::{Alphabet, Symbol};
use nsc_channel::di::{DeletionInsertionChannel, DiParams};
use nsc_core::bounds::{
    alpha, converted_channel_capacity, erasure_upper_bound, theorem5_lower_bound,
};
use nsc_core::engine::{par_map, EngineConfig};
use nsc_core::protocols::resend::run_resend;
use nsc_core::sim::adaptive::run_adaptive_slotted;
use nsc_core::sim::counter::run_counter_protocol;
use nsc_core::sim::slotted::run_slotted;
use nsc_core::sim::stop_wait::run_stop_and_wait;
use nsc_core::sim::unsync::run_unsynchronized;
use nsc_core::sim::BernoulliSchedule;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

fn random_message(bits: u32, n: usize, seed: u64) -> Vec<Symbol> {
    let a = Alphabet::new(bits).expect("valid width");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| a.random(&mut rng)).collect()
}

// ---------------------------------------------------------------- E3

/// One row of E3.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct E3Row {
    /// Deletion probability.
    pub p_d: f64,
    /// Theory `N (1 − p_d)`.
    pub theory: f64,
    /// Measured goodput (bits per channel use).
    pub measured: f64,
    /// Mean channel uses per delivered symbol.
    pub uses_per_symbol: f64,
}

/// E3 sweep.
pub const E3_P_D: [f64; 6] = [0.05, 0.1, 0.2, 0.3, 0.4, 0.5];
/// Symbol width for E3.
pub const E3_BITS: u32 = 4;

/// Runs E3 and returns rows.
pub fn rows_e3(seed: u64) -> Vec<E3Row> {
    rows_e3_cfg(&EngineConfig::serial(seed))
}

/// [`rows_e3`] under the trial engine: rows are evaluated in
/// parallel, each from its own row-derived seed, so the numbers are
/// identical to the serial run at any thread count.
pub fn rows_e3_cfg(cfg: &EngineConfig) -> Vec<E3Row> {
    let seed = cfg.master_seed;
    let alphabet = Alphabet::new(E3_BITS).expect("valid width");
    par_map(cfg, &E3_P_D, |_, &p_d| {
        let ch =
            DeletionInsertionChannel::new(alphabet, DiParams::deletion_only(p_d).expect("valid"));
        let msg = random_message(E3_BITS, 40_000, seed ^ (p_d * 1e4) as u64);
        let mut rng = StdRng::seed_from_u64(seed);
        let out = run_resend(&ch, &msg, &mut rng).expect("valid setup");
        E3Row {
            p_d,
            theory: erasure_upper_bound(E3_BITS, p_d).expect("valid").value(),
            measured: out.goodput(E3_BITS).value(),
            uses_per_symbol: out.channel_uses as f64 / msg.len() as f64,
        }
    })
    .expect("engine delivered every row")
}

/// Renders E3.
pub fn run_e3(seed: u64) -> String {
    run_e3_cfg(&EngineConfig::serial(seed))
}

/// Renders E3 under the trial engine.
pub fn run_e3_cfg(cfg: &EngineConfig) -> String {
    let mut t = Table::new(["p_d", "theory N(1-p_d)", "measured goodput", "uses/symbol"]);
    for r in rows_e3_cfg(cfg) {
        t.row([
            f4(r.p_d),
            f4(r.theory),
            f4(r.measured),
            f4(r.uses_per_symbol),
        ]);
    }
    format!(
        "\n## E3 — Theorem 3: resend protocol achieves the erasure capacity (N = {E3_BITS})\n\n\
         Pure deletion channel + perfect feedback, 40k symbols per row.\n\n{}",
        t.render()
    )
}

// ---------------------------------------------------------------- E4

/// One row of E4.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct E4Row {
    /// Scheduler bias: sender-operation probability.
    pub q: f64,
    /// `P_d` measured from the unsynchronized baseline (overwrites
    /// per write).
    pub p_d_unsync: f64,
    /// `P_i` measured from the unsynchronized baseline (stale reads
    /// per read).
    pub p_i_unsync: f64,
    /// Fraction of counter-protocol positions filled by stale reads.
    pub stale_frac: f64,
    /// Measured symbol error rate of the converted channel.
    pub error_rate: f64,
    /// `alpha · stale_frac` — the Figure 5 prediction for the error
    /// rate.
    pub predicted_error: f64,
    /// Measured reliable rate (bits per covert-pair operation).
    pub measured_rate: f64,
    /// `C_conv` per delivered position times positions per op.
    pub conv_prediction: f64,
    /// Theorem 5 lower bound at the unsync-measured `(P_d, P_i)`
    /// (paper normalization: bits per symbol slot).
    pub thm5_lower: f64,
    /// Theorem 4 upper bound `N (1 − P_d)`.
    pub thm4_upper: f64,
}

/// E4 sweep of scheduler biases.
pub const E4_Q: [f64; 5] = [0.3, 0.4, 0.5, 0.6, 0.7];
/// Symbol width for E4.
pub const E4_BITS: u32 = 4;

/// Runs E4 and returns rows.
pub fn rows_e4(seed: u64) -> Vec<E4Row> {
    rows_e4_cfg(&EngineConfig::serial(seed))
}

/// [`rows_e4`] under the trial engine (identical numbers at any
/// thread count — per-row seeds derive from the master seed alone).
pub fn rows_e4_cfg(cfg: &EngineConfig) -> Vec<E4Row> {
    let seed = cfg.master_seed;
    par_map(cfg, &E4_Q, |i, &q| {
        let msg = random_message(E4_BITS, 60_000, seed.wrapping_add(i as u64));
        // Unsynchronized baseline measures the channel.
        let mut sched = BernoulliSchedule::new(q, StdRng::seed_from_u64(seed ^ 0xAAAA ^ i as u64))
            .expect("valid q");
        let base = run_unsynchronized(&msg, &mut sched, usize::MAX).expect("valid run");
        // Counter protocol over an identically distributed
        // schedule.
        let mut sched2 = BernoulliSchedule::new(q, StdRng::seed_from_u64(seed ^ 0xBBBB ^ i as u64))
            .expect("valid q");
        let counter = run_counter_protocol(&msg, &mut sched2, usize::MAX).expect("valid run");
        let stale_frac = counter.stale_fills as f64 / counter.received.len() as f64;
        let error_rate = counter.symbol_error_rate(&msg);
        let conv = converted_channel_capacity(E4_BITS, stale_frac)
            .expect("valid probability")
            .value();
        let p_d = base.p_d();
        let p_i = base.p_i().min(1.0 - p_d).min(0.999);
        E4Row {
            q,
            p_d_unsync: base.p_d(),
            p_i_unsync: base.p_i(),
            stale_frac,
            error_rate,
            predicted_error: alpha(E4_BITS) * stale_frac,
            measured_rate: counter.reliable_rate(E4_BITS, &msg).value(),
            conv_prediction: conv * counter.symbols_per_op(),
            thm5_lower: theorem5_lower_bound(E4_BITS, p_d, p_i)
                .expect("valid parameters")
                .value(),
            thm4_upper: erasure_upper_bound(E4_BITS, p_d).expect("valid").value(),
        }
    })
    .expect("engine delivered every row")
}

/// Renders E4.
pub fn run_e4(seed: u64) -> String {
    run_e4_cfg(&EngineConfig::serial(seed))
}

/// Renders E4 under the trial engine.
pub fn run_e4_cfg(cfg: &EngineConfig) -> String {
    let mut t = Table::new([
        "q",
        "P_d^",
        "P_i^",
        "stale",
        "err",
        "a*stale",
        "rate b/op",
        "Cconv*sym/op",
        "Thm5 low",
        "Thm4 up",
    ]);
    for r in rows_e4_cfg(cfg) {
        t.row([
            f4(r.q),
            f4(r.p_d_unsync),
            f4(r.p_i_unsync),
            f4(r.stale_frac),
            f4(r.error_rate),
            f4(r.predicted_error),
            f4(r.measured_rate),
            f4(r.conv_prediction),
            f4(r.thm5_lower),
            f4(r.thm4_upper),
        ]);
    }
    format!(
        "\n## E4 — Theorem 5 / Appendix A: the counter protocol (N = {E4_BITS})\n\n\
         Bernoulli(q) operation scheduling; 60k-symbol messages. The converted\n\
         channel's measured error rate matches the Figure 5 M-ary-symmetric\n\
         prediction alpha*stale; the measured reliable rate (bits per\n\
         covert-pair operation) tracks C_conv times the symbol rate. Theorem 5's\n\
         bound is in the paper's per-slot normalization, an upper envelope on\n\
         the per-op physical rate.\n\n{}",
        t.render()
    )
}

// ---------------------------------------------------------------- E6

/// One row of E6.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct E6Row {
    /// Scheduler bias.
    pub q: f64,
    /// Measured operations per delivered symbol.
    pub ops_per_symbol: f64,
    /// Predicted `1/q + 1/(1 − q)`.
    pub predicted: f64,
    /// Fraction of operations wasted waiting.
    pub waste: f64,
    /// Error-free rate in bits per operation.
    pub rate: f64,
}

/// E6 sweep.
pub const E6_Q: [f64; 5] = [0.2, 0.35, 0.5, 0.65, 0.8];
/// Symbol width for E6.
pub const E6_BITS: u32 = 4;

/// Runs E6 and returns rows.
pub fn rows_e6(seed: u64) -> Vec<E6Row> {
    rows_e6_cfg(&EngineConfig::serial(seed))
}

/// [`rows_e6`] under the trial engine.
pub fn rows_e6_cfg(cfg: &EngineConfig) -> Vec<E6Row> {
    let seed = cfg.master_seed;
    par_map(cfg, &E6_Q, |i, &q| {
        let msg = random_message(E6_BITS, 30_000, seed.wrapping_add(100 + i as u64));
        let mut sched = BernoulliSchedule::new(q, StdRng::seed_from_u64(seed ^ 0xCCCC ^ i as u64))
            .expect("valid q");
        let out = run_stop_and_wait(&msg, &mut sched, usize::MAX).expect("valid run");
        E6Row {
            q,
            ops_per_symbol: out.ops as f64 / out.received.len() as f64,
            predicted: 1.0 / q + 1.0 / (1.0 - q),
            waste: out.waste_fraction(),
            rate: out.rate(E6_BITS).value(),
        }
    })
    .expect("engine delivered every row")
}

/// Renders E6.
pub fn run_e6(seed: u64) -> String {
    run_e6_cfg(&EngineConfig::serial(seed))
}

/// Renders E6 under the trial engine.
pub fn run_e6_cfg(cfg: &EngineConfig) -> String {
    let mut t = Table::new(["q", "ops/symbol", "1/q + 1/(1-q)", "waste frac", "bits/op"]);
    for r in rows_e6_cfg(cfg) {
        t.row([
            f4(r.q),
            f4(r.ops_per_symbol),
            f4(r.predicted),
            f4(r.waste),
            f4(r.rate),
        ]);
    }
    format!(
        "\n## E6 — Figure 1 / §3.2: two-sync-variable handshake overhead (N = {E6_BITS})\n\n\
         Delivery is always exact; the cost of synchronization is wasted\n\
         waiting time, maximal at scheduler bias away from q = 1/2.\n\n{}",
        t.render()
    )
}

// ---------------------------------------------------------------- E7

/// One row of E7 (one mechanism).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct E7Row {
    /// Mechanism name.
    pub mechanism: &'static str,
    /// Reliable information rate in bits per covert-pair operation
    /// (raw unreliable throughput for the no-mechanism baseline).
    pub rate: f64,
    /// Whether the stream is reliably decodable without further
    /// coding.
    pub reliable: bool,
}

/// Symbol width for E7.
pub const E7_BITS: u32 = 4;

/// Slot lengths scanned for the E7 common-event-source mechanism.
pub const E7_SLOT_LENS: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// Runs E7 at scheduler bias `q` and returns rows (sorted by rate,
/// descending).
pub fn rows_e7(q: f64, seed: u64) -> Vec<E7Row> {
    rows_e7_cfg(q, &EngineConfig::serial(seed))
}

/// [`rows_e7`] under the trial engine: the slot-length scan runs in
/// parallel (each slot length has its own salted schedule seed, so
/// results are thread-count invariant).
pub fn rows_e7_cfg(q: f64, cfg: &EngineConfig) -> Vec<E7Row> {
    let seed = cfg.master_seed;
    let msg = random_message(E7_BITS, 60_000, seed);
    let mk_sched =
        |salt: u64| BernoulliSchedule::new(q, StdRng::seed_from_u64(seed ^ salt)).expect("valid q");
    // No mechanism: raw fresh-symbol throughput — but the receiver
    // cannot tell fresh from stale, so this is NOT decodable as-is.
    let mut s0 = mk_sched(1);
    let unsync = run_unsynchronized(&msg, &mut s0, usize::MAX).expect("valid run");
    let raw = E7_BITS as f64 * unsync.raw_throughput();
    // Common event source: slotted, best slot length.
    let best_slotted = par_map(cfg, &E7_SLOT_LENS, |_, &slot_len| {
        let mut s = mk_sched(2 + slot_len as u64);
        let out = run_slotted(&msg, &mut s, slot_len, usize::MAX).expect("valid run");
        out.reliable_rate(E7_BITS).value()
    })
    .expect("engine delivered every row")
    .into_iter()
    .fold(0.0f64, f64::max);
    // Perfect feedback: counter protocol.
    let mut s1 = mk_sched(99);
    let counter = run_counter_protocol(&msg, &mut s1, usize::MAX).expect("valid run");
    let counter_rate = counter.reliable_rate(E7_BITS, &msg).value();
    // Feedback + receiver-side sync variable: Figure 1 handshake.
    let mut s2 = mk_sched(77);
    let sw = run_stop_and_wait(&msg, &mut s2, usize::MAX).expect("valid run");
    let sw_rate = sw.rate(E7_BITS).value();
    // Figure 4(b): common event source *with feedback into it* —
    // driven by the *same* schedule as the Fig. 1 handshake so the
    // paper's "becomes the method using feedback" identity is exact.
    let mut s3 = mk_sched(77);
    let adaptive = run_adaptive_slotted(&msg, &mut s3, usize::MAX).expect("valid run");
    let adaptive_rate = adaptive.rate(E7_BITS).value();
    let mut rows = vec![
        E7Row {
            mechanism: "none (raw, undecodable)",
            rate: raw,
            reliable: false,
        },
        E7Row {
            mechanism: "common events (slotted, best L)",
            rate: best_slotted,
            reliable: true,
        },
        E7Row {
            mechanism: "feedback (counter protocol)",
            rate: counter_rate,
            reliable: true,
        },
        E7Row {
            mechanism: "feedback + sync vars (Fig. 1)",
            rate: sw_rate,
            reliable: true,
        },
        E7Row {
            mechanism: "common events + feedback to E (Fig. 4b)",
            rate: adaptive_rate,
            reliable: true,
        },
    ];
    rows.sort_by(|a, b| b.rate.partial_cmp(&a.rate).expect("finite"));
    rows
}

/// Scheduler biases rendered by the E7 report.
pub const E7_REPORT_Q: [f64; 3] = [0.35, 0.5, 0.65];

/// Renders E7.
pub fn run_e7(seed: u64) -> String {
    run_e7_cfg(&EngineConfig::serial(seed))
}

/// Renders E7 under the trial engine: the per-bias sections are
/// evaluated in parallel and concatenated in bias order.
pub fn run_e7_cfg(cfg: &EngineConfig) -> String {
    let mut out = String::from(
        "\n## E7 — Figures 3-4: synchronization mechanism comparison (N = 4)\n\n\
         Reliable bits per covert-pair operation under Bernoulli(q)\n\
         scheduling. Feedback-based mechanisms dominate the fixed-slot\n\
         common-event mechanism at every bias, as §4.2.2 argues; adding a\n\
         feedback path into the event source (Fig. 4b) recovers feedback\n\
         performance exactly; the raw unsynchronized stream is fast but not\n\
         decodable.\n",
    );
    let sections = par_map(cfg, &E7_REPORT_Q, |_, &q| {
        let mut t = Table::new(["mechanism", "bits/op", "reliable"]);
        for r in rows_e7_cfg(q, cfg) {
            t.row([
                r.mechanism.to_owned(),
                f4(r.rate),
                if r.reliable { "yes" } else { "no" }.to_owned(),
            ]);
        }
        format!("\n### q = {q}\n\n{}", t.render())
    })
    .expect("engine delivered every row");
    for s in sections {
        out.push_str(&s);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e3_tracks_theory() {
        for r in rows_e3(3) {
            assert!((r.measured - r.theory).abs() / r.theory < 0.02, "{r:?}");
            assert!((r.uses_per_symbol - 1.0 / (1.0 - r.p_d)).abs() < 0.05);
        }
    }

    #[test]
    fn e4_error_rate_matches_figure5_model() {
        for r in rows_e4(4) {
            assert!((r.error_rate - r.predicted_error).abs() < 0.02, "{r:?}");
            // Measured reliable rate equals the C_conv prediction by
            // construction up to the measured-vs-predicted error gap.
            assert!((r.measured_rate - r.conv_prediction).abs() < 0.1);
            // The paper's bounds sandwich the per-slot achievable
            // rate (measured physical rate is per-op, strictly
            // below).
            assert!(r.thm5_lower <= r.thm4_upper + 1e-9);
            assert!(r.measured_rate <= r.thm4_upper + 1e-9);
        }
    }

    #[test]
    fn e4_unsync_rates_reflect_scheduler_bias() {
        let rows = rows_e4(5);
        // P_d grows with q (sender overruns), P_i falls.
        assert!(rows.first().unwrap().p_d_unsync < rows.last().unwrap().p_d_unsync);
        assert!(rows.first().unwrap().p_i_unsync > rows.last().unwrap().p_i_unsync);
    }

    #[test]
    fn e6_matches_waiting_theory() {
        for r in rows_e6(6) {
            assert!(
                (r.ops_per_symbol - r.predicted).abs() / r.predicted < 0.05,
                "{r:?}"
            );
            assert!((r.rate - E6_BITS as f64 / r.predicted).abs() < 0.05);
        }
    }

    #[test]
    fn e7_feedback_beats_common_events() {
        for &q in &[0.35, 0.5, 0.65] {
            let rows = rows_e7(q, 7);
            let rate = |name: &str| {
                rows.iter()
                    .find(|r| r.mechanism.starts_with(name))
                    .expect("row present")
                    .rate
            };
            let fb = rate("feedback (counter").max(rate("feedback + sync"));
            assert!(
                fb >= rate("common events (slotted") - 1e-9,
                "q={q}: feedback {} < slotted {}",
                fb,
                rate("common events (slotted")
            );
            // Figure 4(b): event source + feedback equals the Fig. 1
            // handshake's rate (identical mechanism in disguise).
            assert!(
                (rate("common events + feedback") - rate("feedback + sync")).abs() < 1e-9,
                "q={q}"
            );
        }
    }

    #[test]
    fn reports_render() {
        assert!(run_e3(1).contains("E3"));
        assert!(run_e4(1).contains("E4"));
        assert!(run_e6(1).contains("E6"));
        assert!(run_e7(1).contains("E7"));
    }

    #[test]
    fn rows_thread_invariant() {
        // The engine contract at the experiment level: every row —
        // floats included — is byte-identical however many workers
        // evaluated the sweep.
        let parallel = EngineConfig::seeded(20_050_605).with_threads(4);
        assert_eq!(rows_e6(20_050_605), rows_e6_cfg(&parallel));
        assert_eq!(rows_e3(20_050_605), rows_e3_cfg(&parallel));
    }
}
