//! E3/E4/E6/E7 kernel benchmarks: protocol runners.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nsc_bench::setup::message as setup_message;
use nsc_channel::alphabet::{Alphabet, Symbol};
use nsc_channel::di::{DeletionInsertionChannel, DiParams};
use nsc_core::protocols::resend::run_resend;
use nsc_core::protocols::selective::run_selective_repeat;
use nsc_core::sim::counter::run_counter_protocol;
use nsc_core::sim::slotted::run_slotted;
use nsc_core::sim::stop_wait::run_stop_and_wait;
use nsc_core::sim::BernoulliSchedule;
use rand::rngs::StdRng;
use rand::SeedableRng;

const MSG_LEN: usize = 10_000;

fn message() -> Vec<Symbol> {
    setup_message(4, MSG_LEN, 1)
}

fn bench_resend(c: &mut Criterion) {
    let msg = message();
    let channel = DeletionInsertionChannel::new(
        Alphabet::new(4).unwrap(),
        DiParams::deletion_only(0.2).unwrap(),
    );
    let mut group = c.benchmark_group("protocols");
    group.throughput(Throughput::Elements(MSG_LEN as u64));
    group.bench_function("resend_pd0.2", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| run_resend(&channel, &msg, &mut rng).unwrap())
    });
    group.bench_function("selective_repeat_w64", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| run_selective_repeat(&channel, &msg, 64, &mut rng).unwrap())
    });
    group.finish();
}

fn bench_mechanistic(c: &mut Criterion) {
    let msg = message();
    let mut group = c.benchmark_group("mechanistic_runs");
    group.throughput(Throughput::Elements(MSG_LEN as u64));
    group.bench_function("counter_q0.5", |b| {
        b.iter(|| {
            let mut s = BernoulliSchedule::new(0.5, StdRng::seed_from_u64(4)).unwrap();
            run_counter_protocol(&msg, &mut s, usize::MAX).unwrap()
        })
    });
    group.bench_function("stop_wait_q0.5", |b| {
        b.iter(|| {
            let mut s = BernoulliSchedule::new(0.5, StdRng::seed_from_u64(5)).unwrap();
            run_stop_and_wait(&msg, &mut s, usize::MAX).unwrap()
        })
    });
    for slot_len in [1usize, 8] {
        group.bench_with_input(
            BenchmarkId::new("slotted_q0.5", slot_len),
            &slot_len,
            |b, &slot_len| {
                b.iter(|| {
                    let mut s = BernoulliSchedule::new(0.5, StdRng::seed_from_u64(6)).unwrap();
                    run_slotted(&msg, &mut s, slot_len, usize::MAX).unwrap()
                })
            },
        );
    }
    group.finish();
}

fn bench_noisy_feedback(c: &mut Criterion) {
    use nsc_core::sim::noisy_feedback::{run_noisy_counter, FeedbackQuality};
    let msg = message();
    let mut group = c.benchmark_group("noisy_feedback");
    group.throughput(Throughput::Elements(MSG_LEN as u64));
    group.bench_function("counter_loss0.25", |b| {
        b.iter(|| {
            let mut s = BernoulliSchedule::new(0.5, StdRng::seed_from_u64(7)).unwrap();
            let mut rng = StdRng::seed_from_u64(8);
            run_noisy_counter(
                &msg,
                &mut s,
                FeedbackQuality {
                    p_loss: 0.25,
                    delay: 0,
                },
                &mut rng,
                usize::MAX,
            )
            .unwrap()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_resend,
    bench_mechanistic,
    bench_noisy_feedback
);
criterion_main!(benches);
