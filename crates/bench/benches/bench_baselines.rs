//! E10 kernel benchmarks: traditional capacity estimators.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nsc_channel::dmc::Dmc;
use nsc_channel::timed_z::TimedZChannel;
use nsc_info::fsm::{FsmChannel, FsmEdge};
use nsc_info::timing::{capacity_per_unit_time, noiseless_timing_capacity, TimingOptions};

fn bench_blahut_families(c: &mut Criterion) {
    let mut group = c.benchmark_group("blahut_capacity");
    let channels: Vec<(&str, Dmc)> = vec![
        ("bsc_0.11", Dmc::binary_symmetric(0.11).unwrap()),
        ("z_0.25", Dmc::z_channel(0.25).unwrap()),
        ("mary_n4_0.2", Dmc::mary_symmetric(4, 0.2).unwrap()),
    ];
    for (name, dmc) in &channels {
        group.bench_with_input(BenchmarkId::from_parameter(*name), dmc, |b, dmc| {
            b.iter(|| dmc.capacity().unwrap())
        });
    }
    group.finish();
}

fn bench_fsm(c: &mut Criterion) {
    let edge = |from, to, duration: f64| FsmEdge {
        from,
        to,
        duration,
        label: String::new(),
    };
    let fsm = FsmChannel::new(2, vec![edge(0, 0, 1.0), edge(0, 1, 2.0), edge(1, 0, 1.5)]).unwrap();
    c.bench_function("millen_fsm_capacity", |b| {
        b.iter(|| fsm.capacity().unwrap())
    });
    c.bench_function("stc_shannon_root", |b| {
        b.iter(|| noiseless_timing_capacity(&[1.0, 2.0, 3.0, 5.0]).unwrap())
    });
}

fn bench_timed_channels(c: &mut Criterion) {
    let z = TimedZChannel::new(0.2, 1.0, 2.0).unwrap();
    c.bench_function("timed_z_capacity", |b| b.iter(|| z.capacity().unwrap()));
    let w = vec![vec![0.9, 0.1], vec![0.2, 0.8]];
    c.bench_function("capacity_per_unit_time_2x2", |b| {
        b.iter(|| capacity_per_unit_time(&w, &[1.0, 3.0], &TimingOptions::default()).unwrap())
    });
}

criterion_group!(
    benches,
    bench_blahut_families,
    bench_fsm,
    bench_timed_channels
);
criterion_main!(benches);
