//! E2/E5 kernel benchmarks: bound formulas and the Blahut–Arimoto
//! cross-check.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nsc_bench::bounds_exp::erasure_dmc;
use nsc_core::bounds::{capacity_bounds, convergence_ratio};
use nsc_info::blahut::{blahut_arimoto, BlahutOptions};

fn bench_bound_formulas(c: &mut Criterion) {
    c.bench_function("capacity_bounds_n8", |b| {
        b.iter(|| capacity_bounds(std::hint::black_box(8), 0.1, 0.1).unwrap())
    });
    c.bench_function("convergence_ratio_n16", |b| {
        b.iter(|| convergence_ratio(std::hint::black_box(16), 0.1).unwrap())
    });
}

fn bench_blahut_erasure(c: &mut Criterion) {
    let mut group = c.benchmark_group("blahut_erasure_dmc");
    for bits in [1u32, 2, 4, 6] {
        let w = erasure_dmc(bits, 0.25);
        group.bench_with_input(BenchmarkId::from_parameter(bits), &w, |b, w| {
            b.iter(|| blahut_arimoto(w, &BlahutOptions::default()).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bound_formulas, bench_blahut_erasure);
criterion_main!(benches);
