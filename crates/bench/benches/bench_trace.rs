//! `nsc_trace` kernel benchmarks: streaming reader throughput and the
//! write → read → infer pipeline on a ~100k-event trace.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use nsc_bench::setup::{serialized_trace, synthetic_events};
use nsc_trace::{write_trace, InferenceBuilder, TraceHeader, TraceReader};

fn bench_reader_throughput(c: &mut Criterion) {
    // ~40k sends → ~90k events → a few MiB of JSONL.
    let (file, events) = serialized_trace(40_000);
    let mut group = c.benchmark_group("trace_reader");
    group.throughput(Throughput::Bytes(file.len() as u64));
    group.bench_function("stream_100k_events", |b| {
        b.iter(|| {
            let reader = TraceReader::new(file.as_slice()).unwrap();
            let mut n = 0u64;
            for event in reader {
                let _ = event.unwrap();
                n += 1;
            }
            assert_eq!(n, events);
            n
        })
    });
    group.finish();
}

fn bench_writer_throughput(c: &mut Criterion) {
    let events = synthetic_events(40_000);
    let (file, _) = serialized_trace(40_000);
    let mut group = c.benchmark_group("trace_writer");
    group.throughput(Throughput::Bytes(file.len() as u64));
    group.bench_function("write_100k_events", |b| {
        b.iter(|| {
            let mut sink = Vec::with_capacity(file.len());
            write_trace(&mut sink, &TraceHeader::new(2), events.iter().copied()).unwrap();
            sink
        })
    });
    group.finish();
}

fn bench_estimate_pipeline(c: &mut Criterion) {
    let (file, events) = serialized_trace(40_000);
    let mut group = c.benchmark_group("trace_estimate");
    group.throughput(Throughput::Elements(events));
    group.bench_function("read_and_infer_100k_events", |b| {
        b.iter(|| {
            let reader = TraceReader::new(file.as_slice()).unwrap();
            let mut builder = InferenceBuilder::new();
            for event in reader {
                builder.observe(&event.unwrap());
            }
            builder.finish(8, 1).unwrap()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_reader_throughput,
    bench_writer_throughput,
    bench_estimate_pipeline
);
criterion_main!(benches);
