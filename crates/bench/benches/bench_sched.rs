//! E8 kernel benchmarks: scheduler simulation and channel
//! measurement.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nsc_sched::covert::measure_covert_channel;
use nsc_sched::mitigation::PolicyKind;
use nsc_sched::system::{Uniprocessor, WorkloadSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

const QUANTA: usize = 50_000;

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("uniprocessor_run");
    group.throughput(Throughput::Elements(QUANTA as u64));
    for kind in PolicyKind::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let spec = WorkloadSpec::covert_pair().with_background(2, 0.8);
                    let mut sys = Uniprocessor::new(spec, kind.build()).unwrap();
                    sys.run(QUANTA, &mut StdRng::seed_from_u64(1))
                })
            },
        );
    }
    group.finish();
}

fn bench_measurement(c: &mut Criterion) {
    let spec = WorkloadSpec::covert_pair().with_background(2, 0.8);
    let mut sys = Uniprocessor::new(spec, PolicyKind::Lottery.build()).unwrap();
    let trace = sys.run(QUANTA, &mut StdRng::seed_from_u64(2));
    c.bench_function("measure_covert_channel", |b| {
        b.iter(|| measure_covert_channel(&trace, 4, &mut StdRng::seed_from_u64(3)).unwrap())
    });
}

criterion_group!(benches, bench_policies, bench_measurement);
criterion_main!(benches);
