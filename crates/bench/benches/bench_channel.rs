//! E1 kernel benchmarks: deletion-insertion channel throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nsc_channel::alphabet::{Alphabet, Symbol};
use nsc_channel::di::{DeletionInsertionChannel, DiParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_transmit(c: &mut Criterion) {
    let mut group = c.benchmark_group("di_channel_transmit");
    let input: Vec<Symbol> = (0..10_000).map(|i| Symbol::from_index(i % 16)).collect();
    group.throughput(Throughput::Elements(input.len() as u64));
    for (name, p_d, p_i, p_s) in [
        ("noiseless", 0.0, 0.0, 0.0),
        ("deletion_only", 0.2, 0.0, 0.0),
        ("full", 0.2, 0.2, 0.1),
    ] {
        let channel = DeletionInsertionChannel::new(
            Alphabet::new(4).unwrap(),
            DiParams::new(p_d, p_i, p_s).unwrap(),
        );
        group.bench_with_input(BenchmarkId::from_parameter(name), &channel, |b, ch| {
            let mut rng = StdRng::seed_from_u64(7);
            b.iter(|| ch.transmit(&input, &mut rng));
        });
    }
    group.finish();
}

fn bench_use_once(c: &mut Criterion) {
    let channel =
        DeletionInsertionChannel::new(Alphabet::binary(), DiParams::new(0.1, 0.1, 0.05).unwrap());
    c.bench_function("di_channel_use_once", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        let sym = Some(Symbol::from_index(1));
        b.iter(|| channel.use_once(sym, &mut rng));
    });
}

fn bench_bursty(c: &mut Criterion) {
    use nsc_channel::burst::GilbertElliottChannel;
    let input: Vec<Symbol> = (0..10_000).map(|i| Symbol::from_index(i % 2)).collect();
    let ch = GilbertElliottChannel::new(
        Alphabet::binary(),
        DiParams::deletion_only(0.02).unwrap(),
        DiParams::deletion_only(0.6).unwrap(),
        0.02,
        0.1,
    )
    .unwrap();
    let mut group = c.benchmark_group("gilbert_elliott_transmit");
    group.throughput(Throughput::Elements(input.len() as u64));
    group.bench_function("burst10", |b| {
        let mut rng = StdRng::seed_from_u64(9);
        b.iter(|| ch.transmit(&input, &mut rng));
    });
    group.finish();
}

criterion_group!(benches, bench_transmit, bench_use_once, bench_bursty);
criterion_main!(benches);
