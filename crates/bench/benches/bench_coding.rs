//! E9 kernel benchmarks: watermark encode/decode and the drift
//! lattice.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use nsc_bench::setup::through_channel;
use nsc_coding::bits::random_bits;
use nsc_coding::conv::ConvCode;
use nsc_coding::lattice::DriftLattice;
use nsc_coding::watermark::WatermarkCode;
use rand::rngs::StdRng;
use rand::SeedableRng;

const DATA_BITS: usize = 200;

fn bench_watermark(c: &mut Criterion) {
    let code = WatermarkCode::new(ConvCode::standard_half_rate(), 3, 0xF00D).unwrap();
    let data = random_bits(DATA_BITS, &mut StdRng::seed_from_u64(1));
    let sent = code.encode(&data).unwrap();
    let recv = through_channel(&sent, 0.05, 2);
    let mut group = c.benchmark_group("watermark");
    group.throughput(Throughput::Elements(DATA_BITS as u64));
    group.bench_function("encode_200b", |b| b.iter(|| code.encode(&data).unwrap()));
    group.bench_function("decode_200b_pd0.05", |b| {
        b.iter(|| code.decode(&recv, DATA_BITS, 0.05, 0.0, 0.0).unwrap())
    });
    group.finish();
}

fn bench_lattice(c: &mut Criterion) {
    let n = 2000usize;
    let mut rng = StdRng::seed_from_u64(3);
    let watermark = random_bits(n, &mut rng);
    let recv = through_channel(&watermark, 0.05, 4);
    let priors = vec![0.1; n];
    let lattice = DriftLattice::new(0.05, 0.0, 0.0).unwrap();
    let mut group = c.benchmark_group("drift_lattice");
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("posteriors_2000b", |b| {
        b.iter(|| lattice.posteriors(&watermark, &priors, &recv).unwrap())
    });
    group.finish();
}

fn bench_viterbi(c: &mut Criterion) {
    let code = ConvCode::nasa_half_rate();
    let data = random_bits(1000, &mut StdRng::seed_from_u64(5));
    let coded = code.encode(&data);
    let mut group = c.benchmark_group("viterbi");
    group.throughput(Throughput::Elements(1000));
    group.bench_function("decode_k7_1000b", |b| {
        b.iter(|| code.decode_hard(&coded).unwrap())
    });
    group.finish();
}

fn bench_ldpc(c: &mut Criterion) {
    use nsc_coding::ldpc::LdpcCode;
    let code = LdpcCode::new(256, 256, 3, 11).unwrap();
    let data = random_bits(256, &mut StdRng::seed_from_u64(7));
    let block = code.encode(&data);
    let llrs: Vec<f64> = block.iter().map(|&b| if b { -2.0 } else { 2.0 }).collect();
    let mut group = c.benchmark_group("ldpc");
    group.throughput(Throughput::Elements(256));
    group.bench_function("encode_k256", |b| b.iter(|| code.encode(&data)));
    group.bench_function("decode_k256_clean", |b| {
        b.iter(|| code.decode(&llrs, 30).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_watermark,
    bench_lattice,
    bench_viterbi,
    bench_ldpc
);
criterion_main!(benches);
