//! Binary entry point for the `nsc` auditor CLI.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match nsc_cli::run(&args) {
        Ok(output) => print!("{output}"),
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    }
}
