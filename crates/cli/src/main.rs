//! Binary entry point for the `nsc` auditor CLI.

/// The allocation-audit oracle (DESIGN §14): registering
/// [`nsc_bench::alloc::CountingAlloc`] here is what lets
/// `nsc bench --format json` report a real `allocs_per_iter` for
/// every kernel row instead of omitting the field. Outside a census
/// the counting hook is a single thread-local load, so the other
/// subcommands pay nothing measurable.
#[global_allocator]
static ALLOC: nsc_bench::alloc::CountingAlloc = nsc_bench::alloc::CountingAlloc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match nsc_cli::run(&args) {
        Ok(output) => print!("{output}"),
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    }
}
