//! The `nsc` command-line covert-channel auditor.
//!
//! Thin, dependency-free argument parsing over the workspace's
//! libraries. Subcommands:
//!
//! * `bounds` — Theorem 4/5 capacity bounds at given parameters.
//! * `correct` — the §4.3 correction from measured deletion counts.
//! * `convert` — the Theorem 5 converted-channel capacity `C_conv`.
//! * `sweep` — the achievable-capacity surface over `(P_d, P_i)`.
//! * `stc` — Shannon/Moskowitz noiseless timing capacity from symbol
//!   durations.
//!
//! The library exposes [`run`] so tests can drive the CLI without a
//! process boundary; `main.rs` is a two-liner.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

use nsc_core::bounds::{capacity_bounds, converted_channel_capacity};
use nsc_core::degradation::SeverityPolicy;
use nsc_core::estimator::assess_from_counts;
use nsc_core::sweep::{sweep_bounds, Grid};
use nsc_info::timing::noiseless_timing_capacity;
use nsc_info::BitsPerTick;
use std::collections::HashMap;
use std::fmt::Write as _;

/// CLI outcome: rendered output or a usage error (message, exit
/// code 2).
pub type CliResult = Result<String, String>;

/// Runs the CLI on pre-split arguments (without the program name).
///
/// # Errors
///
/// Returns a usage/diagnostic message when the arguments are invalid;
/// the caller prints it to stderr and exits non-zero.
pub fn run(args: &[String]) -> CliResult {
    let Some((cmd, rest)) = args.split_first() else {
        return Err(usage());
    };
    match cmd.as_str() {
        "bounds" => cmd_bounds(rest),
        "correct" => cmd_correct(rest),
        "convert" => cmd_convert(rest),
        "sweep" => cmd_sweep(rest),
        "stc" => cmd_stc(rest),
        "help" | "--help" | "-h" => Ok(usage()),
        other => Err(format!("unknown subcommand `{other}`\n\n{}", usage())),
    }
}

/// The usage text.
pub fn usage() -> String {
    "nsc — non-synchronous covert-channel capacity auditor\n\
     \n\
     USAGE:\n\
     \x20 nsc bounds  --bits N --p-d X [--p-i Y]\n\
     \x20 nsc correct --traditional C --deletions D --attempts A\n\
     \x20 nsc convert --bits N --p-i Y\n\
     \x20 nsc sweep   --bits N [--points K]\n\
     \x20 nsc stc     --durations T1,T2,...\n\
     \n\
     All capacities follow Wang & Lee (ICDCS 2005): `bounds` gives the\n\
     Theorem 5 achievable rate and the Theorem 4 upper bound in bits\n\
     per symbol slot; `correct` applies the practical recipe\n\
     C_real = C_traditional * (1 - P_d) with a 95% interval.\n"
        .to_owned()
}

/// Parses `--key value` pairs.
fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut map = HashMap::new();
    let mut it = args.iter();
    while let Some(key) = it.next() {
        let Some(name) = key.strip_prefix("--") else {
            return Err(format!("expected a --flag, got `{key}`"));
        };
        let Some(value) = it.next() else {
            return Err(format!("flag --{name} needs a value"));
        };
        map.insert(name.to_owned(), value.clone());
    }
    Ok(map)
}

fn need<T: std::str::FromStr>(flags: &HashMap<String, String>, name: &str) -> Result<T, String> {
    let raw = flags
        .get(name)
        .ok_or_else(|| format!("missing required flag --{name}"))?;
    raw.parse()
        .map_err(|_| format!("flag --{name}: cannot parse `{raw}`"))
}

fn optional<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    name: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(raw) => raw
            .parse()
            .map_err(|_| format!("flag --{name}: cannot parse `{raw}`")),
    }
}

fn cmd_bounds(args: &[String]) -> CliResult {
    let flags = parse_flags(args)?;
    let bits: u32 = need(&flags, "bits")?;
    let p_d: f64 = need(&flags, "p-d")?;
    let p_i: f64 = optional(&flags, "p-i", 0.0)?;
    let b = capacity_bounds(bits, p_d, p_i).map_err(|e| e.to_string())?;
    let mut out = String::new();
    let _ = writeln!(out, "symbol width    : {bits} bits");
    let _ = writeln!(out, "P_d / P_i       : {p_d} / {p_i}");
    let _ = writeln!(
        out,
        "achievable      : {:.6} bits/slot  (Theorem 5)",
        b.lower.value()
    );
    let _ = writeln!(
        out,
        "upper bound     : {:.6} bits/slot  (Theorem 4, N(1-P_d))",
        b.upper.value()
    );
    let _ = writeln!(out, "tightness       : {:.1}%", 100.0 * b.tightness());
    Ok(out)
}

fn cmd_correct(args: &[String]) -> CliResult {
    let flags = parse_flags(args)?;
    let traditional: f64 = need(&flags, "traditional")?;
    let deletions: u64 = need(&flags, "deletions")?;
    let attempts: u64 = need(&flags, "attempts")?;
    let a = assess_from_counts(
        BitsPerTick(traditional),
        deletions,
        attempts,
        &SeverityPolicy::default(),
    )
    .map_err(|e| e.to_string())?;
    let mut out = String::new();
    let _ = writeln!(out, "traditional     : {traditional} bits/tick");
    let _ = writeln!(
        out,
        "measured P_d    : {:.6}  (95% CI [{:.6}, {:.6}], n = {})",
        a.report.p_d.estimate, a.report.p_d.lower, a.report.p_d.upper, attempts
    );
    let _ = writeln!(
        out,
        "corrected       : {:.6} bits/tick  (interval [{:.6}, {:.6}])",
        a.report.corrected.value(),
        a.report.corrected_interval.0.value(),
        a.report.corrected_interval.1.value()
    );
    let _ = writeln!(out, "severity        : {:?}", a.severity);
    Ok(out)
}

fn cmd_convert(args: &[String]) -> CliResult {
    let flags = parse_flags(args)?;
    let bits: u32 = need(&flags, "bits")?;
    let p_i: f64 = need(&flags, "p-i")?;
    let c = converted_channel_capacity(bits, p_i).map_err(|e| e.to_string())?;
    Ok(format!(
        "C_conv({bits} bits, P_i = {p_i}) = {:.6} bits/symbol  (eqs. 2-4; Figure 5)\n",
        c.value()
    ))
}

fn cmd_sweep(args: &[String]) -> CliResult {
    let flags = parse_flags(args)?;
    let bits: u32 = need(&flags, "bits")?;
    let points: usize = optional(&flags, "points", 10)?;
    if points < 2 {
        return Err("--points must be at least 2".to_owned());
    }
    let grid = Grid::new(0.0, 0.9, points).map_err(|e| e.to_string())?;
    let sweep = sweep_bounds(&grid, &grid, &[bits]).map_err(|e| e.to_string())?;
    let mut out = String::new();
    let _ = write!(out, "{:>7}", "Pd\\Pi");
    for p_i in grid.values() {
        let _ = write!(out, "{p_i:>8.2}");
    }
    let _ = writeln!(out);
    for p_d in grid.values() {
        let _ = write!(out, "{p_d:>7.2}");
        for p_i in grid.values() {
            let cell = sweep
                .points
                .iter()
                .find(|p| (p.p_d - p_d).abs() < 1e-9 && (p.p_i - p_i).abs() < 1e-9);
            match cell {
                Some(p) => {
                    let _ = write!(out, "{:>8.3}", p.bounds.lower.value());
                }
                None => {
                    let _ = write!(out, "{:>8}", "-");
                }
            }
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(
        out,
        "\nachievable bits/slot (Theorem 5); '-' = outside the parameter simplex"
    );
    Ok(out)
}

fn cmd_stc(args: &[String]) -> CliResult {
    let flags = parse_flags(args)?;
    let raw = flags
        .get("durations")
        .ok_or_else(|| "missing required flag --durations".to_owned())?;
    let durations: Vec<f64> = raw
        .split(',')
        .map(|s| {
            s.trim()
                .parse::<f64>()
                .map_err(|_| format!("cannot parse duration `{s}`"))
        })
        .collect::<Result<_, _>>()?;
    let c = noiseless_timing_capacity(&durations).map_err(|e| e.to_string())?;
    Ok(format!(
        "noiseless timing capacity for durations {durations:?}: {c:.6} bits per time unit\n\
         (Shannon's characteristic root; Moskowitz's Simple Timing Channel)\n"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_str(args: &[&str]) -> CliResult {
        run(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn help_and_unknown() {
        assert!(run_str(&["help"]).unwrap().contains("USAGE"));
        assert!(run_str(&[]).is_err());
        assert!(run_str(&["frobnicate"]).unwrap_err().contains("unknown"));
    }

    #[test]
    fn bounds_happy_path() {
        let out = run_str(&["bounds", "--bits", "8", "--p-d", "0.25"]).unwrap();
        assert!(out.contains("upper bound     : 6.000000"));
        assert!(out.contains("achievable      : 6.000000"));
    }

    #[test]
    fn bounds_with_insertions() {
        let out = run_str(&["bounds", "--bits", "4", "--p-d", "0.1", "--p-i", "0.1"]).unwrap();
        assert!(out.contains("Theorem 5"));
        assert!(out.contains("tightness"));
    }

    #[test]
    fn bounds_flag_errors() {
        assert!(run_str(&["bounds", "--bits", "8"])
            .unwrap_err()
            .contains("--p-d"));
        assert!(run_str(&["bounds", "--bits", "x", "--p-d", "0.1"])
            .unwrap_err()
            .contains("cannot parse"));
        assert!(run_str(&["bounds", "bits"]).unwrap_err().contains("--flag"));
        assert!(run_str(&["bounds", "--bits"])
            .unwrap_err()
            .contains("needs a value"));
        // Out-of-range probability propagates the library error.
        assert!(run_str(&["bounds", "--bits", "4", "--p-d", "1.5"]).is_err());
    }

    #[test]
    fn correct_matches_recipe() {
        let out = run_str(&[
            "correct",
            "--traditional",
            "100",
            "--deletions",
            "300",
            "--attempts",
            "1000",
        ])
        .unwrap();
        assert!(out.contains("corrected       : 70.0000"), "{out}");
        assert!(out.contains("severity"));
    }

    #[test]
    fn convert_matches_formula() {
        let out = run_str(&["convert", "--bits", "4", "--p-i", "0.0"]).unwrap();
        assert!(out.contains("= 4.000000"));
    }

    #[test]
    fn sweep_renders_grid() {
        let out = run_str(&["sweep", "--bits", "2", "--points", "4"]).unwrap();
        assert!(out.contains("Pd\\Pi"));
        assert!(out.contains("-"));
        assert!(run_str(&["sweep", "--bits", "2", "--points", "1"]).is_err());
    }

    #[test]
    fn stc_telegraph() {
        let out = run_str(&["stc", "--durations", "1,2"]).unwrap();
        assert!(out.contains("0.694242"), "{out}");
        assert!(run_str(&["stc", "--durations", "1,zebra"]).is_err());
        assert!(run_str(&["stc"]).is_err());
    }
}
