//! The `nsc` command-line covert-channel auditor.
//!
//! Thin, dependency-light argument parsing over the workspace's
//! libraries. Subcommands:
//!
//! * `bounds` — Theorem 4/5 capacity bounds at given parameters.
//! * `correct` — the §4.3 correction from measured deletion counts.
//! * `convert` — the Theorem 5 converted-channel capacity `C_conv`.
//! * `sweep` — the achievable-capacity surface over `(P_d, P_i)`.
//! * `trials` — a Monte-Carlo campaign of one §3 synchronization
//!   mechanism under the deterministic parallel trial engine
//!   (optionally capturing an `nsc-trace/v1` file via `--trace-out`).
//! * `record` — `trials` with the capture made mandatory: run a
//!   campaign *for* its trace.
//! * `estimate` — replay a trace (file or stdin) and infer
//!   `(P_d, P_i)` with confidence intervals, capacity bounds, and a
//!   stationarity verdict.
//! * `stc` — Shannon/Moskowitz noiseless timing capacity from symbol
//!   durations.
//! * `coded` — an engine-scale coded campaign: encode → deletion-
//!   insertion channel → scratch-reused decode for one §4.1 codec,
//!   reporting BER / frame-success / effective-rate statistics that
//!   are bit-identical at any `--threads` and `--decoder` setting.
//! * `bench` — the in-process engine/trace/atlas/coding hot-path
//!   micro-benchmark suites (median ns/op plus a machine
//!   fingerprint), feeding the `scripts/bench_export` regression
//!   harness.
//! * `atlas` — the resumable, content-addressed capacity atlas over
//!   the `(P_d, P_i, N)` plane: `run` simulates cache misses into a
//!   sharded `nsc-atlas/v1` store, `resume` picks a killed run back
//!   up, `report` renders a completed store without simulating.
//!
//! # The CLI contract
//!
//! The contract is **strict**: every subcommand declares its legal
//! flags in a spec table, and anything else — a typo'd flag, a flag
//! from another subcommand, a mechanism-specific flag given with the
//! wrong mechanism — is rejected with a diagnostic (including a
//! "did you mean" hint) instead of silently running the defaults.
//! The paper's whole point is *honest* capacity numbers; a CLI that
//! swallows `--trails 64` and quietly runs 32 trials is how wrong
//! intervals get trusted.
//!
//! Every subcommand takes `--format json|text`. Text (the default)
//! is the historical human-readable rendering, byte-identical to
//! what the CLI printed before the flag existed. JSON is a
//! self-describing document: the parameters actually in effect, the
//! results, and — for engine-backed runs (`sweep`, `trials`) — a
//! `RunManifest` with the master seed, batch size, trial count,
//! engine version, and an `execution` section (thread counts,
//! per-batch wall-clock, trials/sec). Everything outside
//! `manifest.execution` is deterministic: strip that one key and the
//! JSON is byte-identical at any `--threads` setting.
//!
//! The library exposes [`run`] so tests can drive the CLI without a
//! process boundary; `main.rs` is a two-liner.

use nsc_atlas::{AtlasReport, AtlasSpec, AtlasStore, RunTotals, DEFAULT_SHARDS};
use nsc_bench::perf::{self, Profile, SuiteReport};
use nsc_coding::campaign::{run_coded_campaign_with, CodedPlan, DecoderBackend};
use nsc_coding::conv::ConvCode;
use nsc_coding::marker::MarkerCode;
use nsc_coding::rate::Codec;
use nsc_coding::repetition::RepetitionCode;
use nsc_coding::watermark::WatermarkCode;
use nsc_coding::watermark_ldpc::LdpcWatermarkCode;
use nsc_core::bounds::{capacity_bounds, converted_channel_capacity};
use nsc_core::degradation::SeverityPolicy;
use nsc_core::engine::{
    run_campaign_manifest, run_campaign_traced, EngineConfig, ExecutionReport, KernelKind,
    Mechanism, RunManifest, StatSummary, TrialPlan, ENGINE_VERSION,
};
use nsc_core::estimator::assess_from_counts;
use nsc_core::sim::noisy_feedback::FeedbackQuality;
use nsc_core::sweep::{sweep_bounds_manifest, Grid};
use nsc_info::timing::noiseless_timing_capacity;
use nsc_info::BitsPerTick;
use nsc_serve::{query_status, replay_trace, Endpoint, LoadgenConfig, ServeConfig, Server};
use nsc_trace::infer::DEFAULT_WINDOWS;
use nsc_trace::{
    capacity_bounds_with_ci, check_finite_json, events_from_trials, write_trace, CapacityInterval,
    InferenceBuilder, RateEstimate, TraceHeader, TraceReader, TRACE_SCHEMA,
};
use serde_json::{json, Map, Value};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, BufWriter};
use std::time::Instant;

/// Schema identifier embedded in every JSON document.
pub const JSON_SCHEMA: &str = "nsc/v1";

/// CLI outcome: rendered output or a usage error (message, exit
/// code 2).
pub type CliResult = Result<String, String>;

/// Runs the CLI on pre-split arguments (without the program name).
///
/// # Errors
///
/// Returns a usage/diagnostic message when the arguments are invalid;
/// the caller prints it to stderr and exits non-zero.
pub fn run(args: &[String]) -> CliResult {
    let Some((cmd, rest)) = args.split_first() else {
        return Err(usage());
    };
    match cmd.as_str() {
        "bounds" => cmd_bounds(rest),
        "correct" => cmd_correct(rest),
        "convert" => cmd_convert(rest),
        "sweep" => cmd_sweep(rest),
        "trials" => cmd_trials(rest),
        "record" => cmd_record(rest),
        "estimate" => cmd_estimate(rest),
        "stc" => cmd_stc(rest),
        "coded" => cmd_coded(rest),
        "bench" => cmd_bench(rest),
        "atlas" => cmd_atlas(rest),
        "serve" => cmd_serve(rest),
        "loadgen" => cmd_loadgen(rest),
        "help" | "--help" | "-h" => Ok(usage()),
        other => Err(format!("unknown subcommand `{other}`\n\n{}", usage())),
    }
}

/// The usage text.
pub fn usage() -> String {
    let mut out = String::from(
        "nsc — non-synchronous covert-channel capacity auditor\n\
         \n\
         USAGE:\n\
         \x20 nsc <subcommand> [--flag value ...]\n\
         \n\
         Every subcommand takes --format json|text (default text; text is\n\
         byte-identical to the pre---format output). JSON embeds the\n\
         parameters in effect plus, for sweep/trials, a run manifest\n\
         (master seed, batch size, trial count, engine version, thread\n\
         counts, per-batch wall-clock). Unknown or inapplicable flags are\n\
         errors, never silently ignored.\n",
    );
    for (name, spec, blurb) in SUBCOMMANDS {
        let _ = write!(out, "\n  nsc {name} — {blurb}\n");
        for f in *spec {
            let req = if f.required { " (required)" } else { "" };
            if f.takes_value {
                let _ = writeln!(out, "    --{} {}  {}{req}", f.name, f.value, f.help);
            } else {
                let _ = writeln!(out, "    --{}  {}{req}", f.name, f.help);
            }
        }
    }
    out.push_str(
        "\nAll capacities follow Wang & Lee (ICDCS 2005): `bounds` gives the\n\
         Theorem 5 achievable rate and the Theorem 4 upper bound in bits\n\
         per symbol slot; `correct` applies the practical recipe\n\
         C_real = C_traditional * (1 - P_d) with a 95% interval.\n\
         \n\
         `trials` mechanisms: unsync | counter | stop-wait | slotted |\n\
         adaptive | noisy-counter | wide. Campaigns run on the\n\
         deterministic parallel engine: --threads (0 = all cores) changes\n\
         wall-clock time only; output is bit-identical for a given --seed.\n\
         \n\
         `record` runs a campaign and writes every trial's channel events\n\
         as an nsc-trace/v1 file (`trials --trace-out` does the same,\n\
         opt-in); the trace embeds the run manifest, and its bytes are\n\
         identical at any --threads. `estimate --trace FILE` replays a\n\
         trace and reports the maximum-likelihood (P_d, P_i) with Wilson\n\
         and likelihood-ratio 95% intervals, the Theorem 1/4 upper bound,\n\
         the Theorem 5 lower bound, and a windowed change-point scan;\n\
         `estimate --trace -` reads the trace from stdin.\n\
         \n\
         `coded` runs the §4.1 coded pipeline at engine scale: each trial\n\
         encodes a random frame, transmits it through the binary\n\
         deletion-insertion channel, and decodes it through the\n\
         scratch-reused hot path, reporting BER, frame success, and the\n\
         effective rate next to the nominal code rate. Summaries are\n\
         bit-identical at any --threads and --decoder setting; the\n\
         decoder backend is recorded only in manifest.execution.\n\
         \n\
         `atlas run` surveys every bound family (Theorem 4 erasure upper\n\
         bound, Theorem 5, the Kanoria-Montanari small-deletion expansion,\n\
         a VTR-style achievable rate) plus a simulated campaign over a\n\
         (P_d, P_i, N) grid, caching each cell in a content-addressed\n\
         nsc-atlas/v1 store as it completes: kill it at any point and\n\
         `atlas resume` (or re-running the same command) picks up where it\n\
         stopped, and the finished report is byte-identical to an\n\
         uninterrupted run (after stripping manifest.execution) at any\n\
         --threads and --kernel. `atlas report` renders a completed store\n\
         without simulating anything.\n\
         \n\
         `serve` runs the same estimator online: nsc-trace/v1 streams\n\
         over --tcp/--unix connections feed per-stream incremental\n\
         estimators (bounded memory), queried live with `serve --status`.\n\
         Replaying a recorded trace matches `estimate` byte for byte.\n\
         `loadgen` replays a trace file against a running server over\n\
         many connections and reports sustained events/sec.\n",
    );
    out
}

/// One legal flag of a subcommand.
struct FlagSpec {
    /// Flag name, without the leading `--`.
    name: &'static str,
    /// Value placeholder shown in usage text.
    value: &'static str,
    /// Whether the flag must be present.
    required: bool,
    /// One-line description for usage and diagnostics.
    help: &'static str,
    /// Mechanisms the flag applies to (`trials` only); `None` = all.
    mechanisms: Option<&'static [&'static str]>,
    /// Whether the flag consumes the next argument as its value;
    /// `false` makes it a bare switch (present/absent).
    takes_value: bool,
}

const fn flag(
    name: &'static str,
    value: &'static str,
    required: bool,
    help: &'static str,
) -> FlagSpec {
    FlagSpec {
        name,
        value,
        required,
        help,
        mechanisms: None,
        takes_value: true,
    }
}

const fn switch(name: &'static str, help: &'static str) -> FlagSpec {
    FlagSpec {
        name,
        value: "",
        required: false,
        help,
        mechanisms: None,
        takes_value: false,
    }
}

const fn mech_flag(
    name: &'static str,
    value: &'static str,
    help: &'static str,
    mechanisms: &'static [&'static str],
) -> FlagSpec {
    FlagSpec {
        name,
        value,
        required: false,
        help,
        mechanisms: Some(mechanisms),
        takes_value: true,
    }
}

const FORMAT_FLAG: FlagSpec = flag("format", "json|text", false, "output format (default text)");

const BOUNDS_FLAGS: &[FlagSpec] = &[
    flag("bits", "N", true, "symbol width in bits"),
    flag("p-d", "X", true, "deletion probability"),
    flag("p-i", "Y", false, "insertion probability (default 0)"),
    FORMAT_FLAG,
];

const CORRECT_FLAGS: &[FlagSpec] = &[
    flag(
        "traditional",
        "C",
        true,
        "traditional capacity estimate, bits/tick",
    ),
    flag("deletions", "D", true, "measured deletion count"),
    flag("attempts", "A", true, "measured attempt count"),
    FORMAT_FLAG,
];

const CONVERT_FLAGS: &[FlagSpec] = &[
    flag("bits", "N", true, "symbol width in bits"),
    flag("p-i", "Y", true, "insertion probability"),
    FORMAT_FLAG,
];

const SWEEP_FLAGS: &[FlagSpec] = &[
    flag("bits", "N", true, "symbol width in bits"),
    flag("points", "K", false, "grid points per axis (default 10)"),
    flag(
        "seed",
        "S",
        false,
        "master seed recorded in the manifest (default 0)",
    ),
    flag(
        "threads",
        "T",
        false,
        "worker threads, 0 = one per core (default 0)",
    ),
    FORMAT_FLAG,
];

/// The campaign flag table, shared by `trials` (capture optional)
/// and `record` (capture required).
const fn campaign_flag_table(trace_required: bool) -> [FlagSpec; 14] {
    [
        flag(
            "mechanism",
            "M",
            true,
            "unsync | counter | stop-wait | slotted | adaptive | noisy-counter | wide",
        ),
        flag("bits", "N", true, "symbol width in bits"),
        flag(
            "q",
            "X",
            false,
            "Bernoulli schedule sender probability (default 0.5)",
        ),
        flag(
            "len",
            "L",
            false,
            "message length in symbols (default 2000)",
        ),
        flag("trials", "K", false, "trial count (default 32)"),
        flag("seed", "S", false, "engine master seed (default 0)"),
        flag(
            "threads",
            "T",
            false,
            "worker threads, 0 = one per core (default 0)",
        ),
        flag(
            "max-ops",
            "B",
            false,
            "operation budget per trial (default 64*len, min 4096)",
        ),
        flag(
            "kernel",
            "scalar|bitsliced",
            false,
            "execution kernel (default scalar); bitsliced packs 64 trials per u64 lane, output bit-identical",
        ),
        mech_flag(
            "slot-len",
            "L",
            "operations per slot (default 8)",
            &["slotted"],
        ),
        mech_flag(
            "p-loss",
            "X",
            "feedback loss probability (default 0)",
            &["noisy-counter"],
        ),
        mech_flag(
            "delay",
            "D",
            "feedback delay in operations (default 0)",
            &["noisy-counter"],
        ),
        FlagSpec {
            name: "trace-out",
            value: "FILE",
            required: trace_required,
            help: "write an nsc-trace/v1 capture of every trial to FILE",
            mechanisms: None,
            takes_value: true,
        },
        FORMAT_FLAG,
    ]
}

const TRIALS_FLAG_TABLE: [FlagSpec; 14] = campaign_flag_table(false);
const TRIALS_FLAGS: &[FlagSpec] = &TRIALS_FLAG_TABLE;
const RECORD_FLAG_TABLE: [FlagSpec; 14] = campaign_flag_table(true);
const RECORD_FLAGS: &[FlagSpec] = &RECORD_FLAG_TABLE;

const ESTIMATE_FLAGS: &[FlagSpec] = &[
    flag(
        "trace",
        "FILE|-",
        true,
        "nsc-trace/v1 file to analyse (`-` reads stdin)",
    ),
    flag(
        "windows",
        "W",
        false,
        "change-point scan windows (default 8)",
    ),
    flag(
        "threads",
        "T",
        false,
        "worker threads, 0 = one per core (default 0)",
    ),
    FORMAT_FLAG,
];

const STC_FLAGS: &[FlagSpec] = &[
    flag(
        "durations",
        "T1,T2,...",
        true,
        "comma-separated symbol durations",
    ),
    FORMAT_FLAG,
];

const CODED_FLAGS: &[FlagSpec] = &[
    flag(
        "codec",
        "C",
        true,
        "watermark | watermark-ldpc | marker | repetition | sequential",
    ),
    flag(
        "data-bits",
        "K",
        false,
        "data bits per frame (default 64; must be positive)",
    ),
    flag("p-d", "X", true, "deletion probability per coded bit"),
    flag(
        "p-i",
        "Y",
        false,
        "insertion probability per channel use (default 0)",
    ),
    flag(
        "p-s",
        "Z",
        false,
        "substitution probability per transmitted bit (default 0)",
    ),
    flag("trials", "K", false, "frames to simulate (default 32)"),
    flag("seed", "S", false, "engine master seed (default 0)"),
    flag(
        "threads",
        "T",
        false,
        "worker threads, 0 = one per core (default 0)",
    ),
    flag(
        "block-len",
        "B",
        false,
        "watermark sparse block length (default 3; watermark codecs only)",
    ),
    flag(
        "decoder",
        "scratch|allocating",
        false,
        "decode entry points to exercise (default scratch); summaries are bit-identical either way",
    ),
    FORMAT_FLAG,
];

const BENCH_FLAGS: &[FlagSpec] = &[
    flag(
        "suite",
        "engine|trace|atlas|coding|all",
        false,
        "which suite to run (default all)",
    ),
    flag(
        "profile",
        "quick|full",
        false,
        "workload size (default full; quick is the CI smoke setting)",
    ),
    flag(
        "reps",
        "R",
        false,
        "recorded repetitions per kernel, after one warm-up (default 5)",
    ),
    flag(
        "kernel",
        "scalar|bitsliced|all",
        false,
        "engine-suite execution kernels to time (default all)",
    ),
    FORMAT_FLAG,
];

const ATLAS_FLAGS: &[FlagSpec] = &[
    flag(
        "store",
        "DIR",
        true,
        "nsc-atlas/v1 store directory (created by `run`, reused to resume)",
    ),
    flag(
        "widths",
        "N1,N2,...",
        false,
        "comma-separated symbol widths to survey (default 1,4)",
    ),
    flag(
        "p-d",
        "A:B:K",
        false,
        "deletion-probability grid start:end:points, or one fixed value (default 0:0.5:4)",
    ),
    flag(
        "p-i",
        "A:B:K",
        false,
        "insertion-probability grid start:end:points, or one fixed value (default 0:0.5:4)",
    ),
    flag(
        "mechanism",
        "M",
        false,
        "unsync | counter | slotted — kernel-equivalent mechanisms only (default counter)",
    ),
    mech_flag(
        "slot-len",
        "L",
        "operations per slot (default 8)",
        &["slotted"],
    ),
    flag("trials", "K", false, "trials per cell (default 32)"),
    flag(
        "len",
        "L",
        false,
        "message length in symbols per trial (default 128)",
    ),
    flag("seed", "S", false, "atlas master seed (default 0)"),
    flag(
        "batch",
        "B",
        false,
        "engine batch size; part of each cell's identity (default 32)",
    ),
    flag(
        "shards",
        "N",
        false,
        "store shard count, `run` on a fresh store only (default 4)",
    ),
    flag(
        "max-cells",
        "C",
        false,
        "stop after simulating C cells (run/resume; models a killed run)",
    ),
    flag(
        "threads",
        "T",
        false,
        "worker threads, 0 = one per core (default 0)",
    ),
    flag(
        "kernel",
        "scalar|bitsliced",
        false,
        "execution kernel (default scalar); reports are byte-identical either way",
    ),
    FORMAT_FLAG,
];

const SERVE_FLAGS: &[FlagSpec] = &[
    flag(
        "tcp",
        "ADDR",
        false,
        "TCP listen/query address, e.g. 127.0.0.1:7070",
    ),
    flag(
        "unix",
        "PATH",
        false,
        "Unix-domain socket listen/query path",
    ),
    flag(
        "shards",
        "N",
        false,
        "stream-registry shards (default 8; ≥ 1)",
    ),
    flag(
        "windows",
        "W",
        false,
        "change-point scan windows per snapshot (default 8; ≥ 1)",
    ),
    flag(
        "threads",
        "T",
        false,
        "scan worker threads, 0 = one per core (default 0)",
    ),
    switch(
        "status",
        "query a running server's status endpoint instead of serving",
    ),
    FORMAT_FLAG,
];

const LOADGEN_FLAGS: &[FlagSpec] = &[
    flag(
        "trace",
        "FILE",
        true,
        "nsc-trace/v1 file to replay against the server",
    ),
    flag("tcp", "ADDR", false, "server TCP address to stream to"),
    flag("unix", "PATH", false, "server Unix-domain socket path"),
    flag(
        "connections",
        "C",
        false,
        "concurrent connections, each streaming the whole trace (default 1; ≥ 1)",
    ),
    flag(
        "rate",
        "R",
        false,
        "target events/sec across all connections, 0 = unthrottled (default 0)",
    ),
    flag(
        "repeat",
        "K",
        false,
        "whole-trace repetitions per connection, tick-shifted (default 1; ≥ 1)",
    ),
    FORMAT_FLAG,
];

/// Subcommand registry: name, flag spec, one-line description.
const SUBCOMMANDS: &[(&str, &[FlagSpec], &str)] = &[
    ("bounds", BOUNDS_FLAGS, "Theorem 4/5 capacity bounds"),
    ("correct", CORRECT_FLAGS, "the §4.3 capacity correction"),
    ("convert", CONVERT_FLAGS, "Theorem 5 converted capacity"),
    ("sweep", SWEEP_FLAGS, "achievable-capacity surface"),
    ("trials", TRIALS_FLAGS, "Monte-Carlo mechanism campaign"),
    (
        "record",
        RECORD_FLAGS,
        "campaign with a mandatory nsc-trace/v1 capture",
    ),
    (
        "estimate",
        ESTIMATE_FLAGS,
        "infer (P_d, P_i) and capacity bounds from a trace",
    ),
    ("stc", STC_FLAGS, "noiseless timing capacity"),
    (
        "coded",
        CODED_FLAGS,
        "engine-scale coded campaign over the deletion-insertion channel",
    ),
    (
        "bench",
        BENCH_FLAGS,
        "engine/trace/atlas/coding hot-path micro-benchmarks",
    ),
    (
        "atlas",
        ATLAS_FLAGS,
        "resumable cached capacity atlas over (P_d, P_i, N); modes: run | resume | report",
    ),
    (
        "serve",
        SERVE_FLAGS,
        "online streaming estimation server (nsc-serve/v1 status endpoint)",
    ),
    (
        "loadgen",
        LOADGEN_FLAGS,
        "replay a trace against a running server and measure events/sec",
    ),
];

/// Levenshtein edit distance, for "did you mean" hints.
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut row = vec![i + 1];
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            row.push(sub.min(prev[j + 1] + 1).min(row[j] + 1));
        }
        prev = row;
    }
    prev[b.len()]
}

/// Diagnostic for a flag outside the subcommand's spec.
fn unknown_flag(cmd: &str, spec: &[FlagSpec], name: &str) -> String {
    let suggestion = spec
        .iter()
        .map(|f| (edit_distance(name, f.name), f.name))
        .min_by_key(|&(d, _)| d)
        .filter(|&(d, _)| d <= 2)
        .map(|(_, best)| format!(" (did you mean --{best}?)"))
        .unwrap_or_default();
    let valid = spec
        .iter()
        .map(|f| format!("--{}", f.name))
        .collect::<Vec<_>>()
        .join(", ");
    format!("unknown flag --{name} for `{cmd}`{suggestion}\nvalid flags: {valid}")
}

/// Parses `--key value` pairs against the subcommand's flag spec.
///
/// Strictness is the point: flags outside the spec, duplicated
/// flags, and bare values are all hard errors — never silently
/// ignored in favor of defaults.
fn parse_flags(
    cmd: &str,
    spec: &[FlagSpec],
    args: &[String],
) -> Result<BTreeMap<String, String>, String> {
    let mut map = BTreeMap::new();
    let mut it = args.iter();
    while let Some(key) = it.next() {
        let Some(name) = key.strip_prefix("--") else {
            return Err(format!("expected a --flag, got `{key}`"));
        };
        let Some(spec_flag) = spec.iter().find(|f| f.name == name) else {
            return Err(unknown_flag(cmd, spec, name));
        };
        let value = if spec_flag.takes_value {
            let Some(value) = it.next() else {
                return Err(format!("flag --{name} needs a value"));
            };
            value.clone()
        } else {
            // A bare switch: present ⇒ "true", never consumes an
            // argument.
            "true".to_owned()
        };
        if map.insert(name.to_owned(), value).is_some() {
            return Err(format!("flag --{name} given more than once"));
        }
    }
    Ok(map)
}

/// Rejects mechanism-specific flags given with a mechanism they do
/// not apply to (`--slot-len` with `counter`, `--p-loss` with
/// `unsync`, …).
fn check_mechanism_flags(
    flags: &BTreeMap<String, String>,
    spec: &[FlagSpec],
    mechanism: &str,
) -> Result<(), String> {
    for f in spec {
        if let Some(mechs) = f.mechanisms {
            if flags.contains_key(f.name) && !mechs.contains(&mechanism) {
                return Err(format!(
                    "flag --{} does not apply to mechanism `{mechanism}` (applies to: {})",
                    f.name,
                    mechs.join(", ")
                ));
            }
        }
    }
    Ok(())
}

/// "Did you mean" suffix for an invalid flag *value*, mirroring the
/// treatment typo'd flag *names* get.
fn value_suggestion(raw: &str, valid: &[&str]) -> String {
    valid
        .iter()
        .map(|v| (edit_distance(raw, v), *v))
        .min_by_key(|&(d, _)| d)
        .filter(|&(d, _)| d <= 2)
        .map(|(_, best)| format!(" (did you mean `{best}`?)"))
        .unwrap_or_default()
}

/// Parses `--kernel` for campaign subcommands (default scalar).
fn parse_kernel(flags: &BTreeMap<String, String>) -> Result<KernelKind, String> {
    match flags.get("kernel").map(String::as_str) {
        None | Some("scalar") => Ok(KernelKind::Scalar),
        Some("bitsliced") => Ok(KernelKind::Bitsliced),
        Some(other) => Err(format!(
            "flag --kernel: expected `scalar` or `bitsliced`, got `{other}`{}",
            value_suggestion(other, &["scalar", "bitsliced"])
        )),
    }
}

/// Output rendering selected by `--format`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OutputFormat {
    /// The historical human-readable rendering (the default).
    Text,
    /// A self-describing JSON document.
    Json,
}

fn output_format(flags: &BTreeMap<String, String>) -> Result<OutputFormat, String> {
    match flags.get("format").map(String::as_str) {
        None | Some("text") => Ok(OutputFormat::Text),
        Some("json") => Ok(OutputFormat::Json),
        Some(other) => Err(format!(
            "flag --format: expected `json` or `text`, got `{other}`"
        )),
    }
}

/// Serializes a CLI JSON document (pretty, trailing newline).
fn render_json(doc: &Value) -> String {
    let mut s = serde_json::to_string_pretty(doc).expect("CLI documents serialize");
    s.push('\n');
    s
}

/// Assembles the common document envelope.
fn json_doc(command: &str, params: Value, body: Vec<(&str, Value)>) -> Value {
    let mut root = Map::new();
    root.insert("schema".to_owned(), json!(JSON_SCHEMA));
    root.insert("command".to_owned(), json!(command));
    root.insert("params".to_owned(), params);
    for (key, value) in body {
        root.insert(key.to_owned(), value);
    }
    Value::Object(root)
}

fn manifest_json(manifest: &RunManifest) -> Value {
    serde_json::to_value(manifest).expect("manifests serialize")
}

fn need<T: std::str::FromStr>(flags: &BTreeMap<String, String>, name: &str) -> Result<T, String> {
    let raw = flags
        .get(name)
        .ok_or_else(|| format!("missing required flag --{name}"))?;
    raw.parse()
        .map_err(|_| format!("flag --{name}: cannot parse `{raw}`"))
}

fn optional<T: std::str::FromStr>(
    flags: &BTreeMap<String, String>,
    name: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(raw) => raw
            .parse()
            .map_err(|_| format!("flag --{name}: cannot parse `{raw}`")),
    }
}

/// Rejects a parsed `f64` flag value that is `NaN`/`±inf`: both
/// parse successfully from the command line but poison every
/// downstream computation and decay to `null` in JSON output, so
/// they are stopped at the flag boundary.
fn reject_non_finite(
    flags: &BTreeMap<String, String>,
    name: &str,
    value: f64,
) -> Result<f64, String> {
    if value.is_finite() {
        Ok(value)
    } else {
        let raw = flags.get(name).map(String::as_str).unwrap_or_default();
        Err(format!(
            "flag --{name}: expected a finite number, got `{raw}`"
        ))
    }
}

/// [`need`] for `f64` flags, with the finiteness check.
fn need_finite(flags: &BTreeMap<String, String>, name: &str) -> Result<f64, String> {
    let value = need(flags, name)?;
    reject_non_finite(flags, name, value)
}

/// [`optional`] for `f64` flags, with the finiteness check.
fn optional_finite(
    flags: &BTreeMap<String, String>,
    name: &str,
    default: f64,
) -> Result<f64, String> {
    let value = optional(flags, name, default)?;
    reject_non_finite(flags, name, value)
}

fn cmd_bounds(args: &[String]) -> CliResult {
    let flags = parse_flags("bounds", BOUNDS_FLAGS, args)?;
    let format = output_format(&flags)?;
    let bits: u32 = need(&flags, "bits")?;
    let p_d: f64 = need_finite(&flags, "p-d")?;
    let p_i: f64 = optional_finite(&flags, "p-i", 0.0)?;
    let b = capacity_bounds(bits, p_d, p_i).map_err(|e| e.to_string())?;
    if format == OutputFormat::Json {
        return Ok(render_json(&json_doc(
            "bounds",
            json!({"bits": bits, "p_d": p_d, "p_i": p_i}),
            vec![(
                "results",
                json!({
                    "achievable_bits_per_slot": b.lower.value(),
                    "upper_bound_bits_per_slot": b.upper.value(),
                    "tightness": b.tightness(),
                }),
            )],
        )));
    }
    let mut out = String::new();
    let _ = writeln!(out, "symbol width    : {bits} bits");
    let _ = writeln!(out, "P_d / P_i       : {p_d} / {p_i}");
    let _ = writeln!(
        out,
        "achievable      : {:.6} bits/slot  (Theorem 5)",
        b.lower.value()
    );
    let _ = writeln!(
        out,
        "upper bound     : {:.6} bits/slot  (Theorem 4, N(1-P_d))",
        b.upper.value()
    );
    let _ = writeln!(out, "tightness       : {:.1}%", 100.0 * b.tightness());
    Ok(out)
}

fn cmd_correct(args: &[String]) -> CliResult {
    let flags = parse_flags("correct", CORRECT_FLAGS, args)?;
    let format = output_format(&flags)?;
    let traditional: f64 = need_finite(&flags, "traditional")?;
    let deletions: u64 = need(&flags, "deletions")?;
    let attempts: u64 = need(&flags, "attempts")?;
    let a = assess_from_counts(
        BitsPerTick(traditional),
        deletions,
        attempts,
        &SeverityPolicy::default(),
    )
    .map_err(|e| e.to_string())?;
    if format == OutputFormat::Json {
        return Ok(render_json(&json_doc(
            "correct",
            json!({
                "traditional_bits_per_tick": traditional,
                "deletions": deletions,
                "attempts": attempts,
            }),
            vec![(
                "results",
                serde_json::to_value(&a).expect("assessments serialize"),
            )],
        )));
    }
    let mut out = String::new();
    let _ = writeln!(out, "traditional     : {traditional} bits/tick");
    let _ = writeln!(
        out,
        "measured P_d    : {:.6}  (95% CI [{:.6}, {:.6}], n = {})",
        a.report.p_d.estimate, a.report.p_d.lower, a.report.p_d.upper, attempts
    );
    let _ = writeln!(
        out,
        "corrected       : {:.6} bits/tick  (interval [{:.6}, {:.6}])",
        a.report.corrected.value(),
        a.report.corrected_interval.0.value(),
        a.report.corrected_interval.1.value()
    );
    let _ = writeln!(out, "severity        : {:?}", a.severity);
    Ok(out)
}

fn cmd_convert(args: &[String]) -> CliResult {
    let flags = parse_flags("convert", CONVERT_FLAGS, args)?;
    let format = output_format(&flags)?;
    let bits: u32 = need(&flags, "bits")?;
    let p_i: f64 = need_finite(&flags, "p-i")?;
    let c = converted_channel_capacity(bits, p_i).map_err(|e| e.to_string())?;
    if format == OutputFormat::Json {
        return Ok(render_json(&json_doc(
            "convert",
            json!({"bits": bits, "p_i": p_i}),
            vec![("results", json!({"c_conv_bits_per_symbol": c.value()}))],
        )));
    }
    Ok(format!(
        "C_conv({bits} bits, P_i = {p_i}) = {:.6} bits/symbol  (eqs. 2-4; Figure 5)\n",
        c.value()
    ))
}

fn cmd_sweep(args: &[String]) -> CliResult {
    let flags = parse_flags("sweep", SWEEP_FLAGS, args)?;
    let format = output_format(&flags)?;
    let bits: u32 = need(&flags, "bits")?;
    let points: usize = optional(&flags, "points", 10)?;
    if points < 2 {
        return Err("--points must be at least 2".to_owned());
    }
    let seed: u64 = optional(&flags, "seed", 0)?;
    let threads: usize = optional(&flags, "threads", 0)?;
    let grid = Grid::new(0.0, 0.9, points).map_err(|e| e.to_string())?;
    let cfg = EngineConfig::seeded(seed).with_threads(threads);
    let (sweep, manifest) =
        sweep_bounds_manifest(&cfg, &grid, &grid, &[bits]).map_err(|e| e.to_string())?;
    if format == OutputFormat::Json {
        return Ok(render_json(&json_doc(
            "sweep",
            json!({"bits": bits, "points": points, "seed": seed}),
            vec![
                ("manifest", manifest_json(&manifest)),
                (
                    "sweep",
                    serde_json::to_value(&sweep).expect("sweeps serialize"),
                ),
            ],
        )));
    }
    let mut out = String::new();
    let _ = write!(out, "{:>7}", "Pd\\Pi");
    for p_i in grid.values() {
        let _ = write!(out, "{p_i:>8.2}");
    }
    let _ = writeln!(out);
    for p_d in grid.values() {
        let _ = write!(out, "{p_d:>7.2}");
        for p_i in grid.values() {
            let cell = sweep
                .points
                .iter()
                .find(|p| (p.p_d - p_d).abs() < 1e-9 && (p.p_i - p_i).abs() < 1e-9);
            match cell {
                Some(p) => {
                    let _ = write!(out, "{:>8.3}", p.bounds.lower.value());
                }
                None => {
                    let _ = write!(out, "{:>8}", "-");
                }
            }
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(
        out,
        "\nachievable bits/slot (Theorem 5); '-' = outside the parameter simplex"
    );
    Ok(out)
}

fn cmd_trials(args: &[String]) -> CliResult {
    campaign_command("trials", TRIALS_FLAGS, args)
}

fn cmd_record(args: &[String]) -> CliResult {
    campaign_command("record", RECORD_FLAGS, args)
}

/// Shared implementation of `trials` and `record`: the two differ
/// only in whether `--trace-out` is required.
fn campaign_command(cmd: &str, spec: &[FlagSpec], args: &[String]) -> CliResult {
    let flags = parse_flags(cmd, spec, args)?;
    let format = output_format(&flags)?;
    let mech_name: String = need(&flags, "mechanism")?;
    let bits: u32 = need(&flags, "bits")?;
    let q: f64 = optional_finite(&flags, "q", 0.5)?;
    let len: usize = optional(&flags, "len", 2_000)?;
    if len == 0 {
        return Err("--len must be at least 1".to_owned());
    }
    let trials: usize = optional(&flags, "trials", 32)?;
    if trials == 0 {
        return Err("--trials must be at least 1".to_owned());
    }
    let seed: u64 = optional(&flags, "seed", 0)?;
    let threads: usize = optional(&flags, "threads", 0)?;
    let mechanism = match mech_name.as_str() {
        "unsync" => Mechanism::Unsynchronized,
        "counter" => Mechanism::Counter,
        "stop-wait" => Mechanism::StopWait,
        "slotted" => Mechanism::Slotted {
            slot_len: optional(&flags, "slot-len", 8)?,
        },
        "adaptive" => Mechanism::AdaptiveSlotted,
        "noisy-counter" => Mechanism::NoisyCounter {
            quality: FeedbackQuality {
                p_loss: optional_finite(&flags, "p-loss", 0.0)?,
                delay: optional(&flags, "delay", 0)?,
            },
        },
        "wide" => Mechanism::Wide,
        other => {
            return Err(format!(
                "unknown mechanism `{other}` (expected unsync | counter | stop-wait | \
                 slotted | adaptive | noisy-counter | wide)"
            ))
        }
    };
    check_mechanism_flags(&flags, spec, mechanism.name())?;
    let mut plan = TrialPlan::new(mechanism, bits, len, q);
    if let Some(raw) = flags.get("max-ops") {
        plan.max_ops = raw
            .parse()
            .map_err(|_| format!("flag --max-ops: cannot parse `{raw}`"))?;
    }
    let kernel = parse_kernel(&flags)?;
    let trace_out = flags.get("trace-out").cloned();
    if trace_out.is_none() && spec.iter().any(|f| f.name == "trace-out" && f.required) {
        return Err("missing required flag --trace-out".to_owned());
    }
    if kernel == KernelKind::Bitsliced && trace_out.is_some() {
        return Err(
            "--kernel bitsliced cannot capture traces (bitsliced lanes record counts, \
             not per-operation events); rerun with --kernel scalar"
                .to_owned(),
        );
    }
    let cfg = EngineConfig::seeded(seed)
        .with_threads(threads)
        .with_kernel(kernel);
    let (summary, manifest, capture) = match &trace_out {
        None => {
            let (summary, manifest) =
                run_campaign_manifest(&cfg, &plan, trials).map_err(|e| e.to_string())?;
            (summary, manifest, None)
        }
        Some(path) => {
            let (summary, manifest, traces) =
                run_campaign_traced(&cfg, &plan, trials).map_err(|e| e.to_string())?;
            // The header embeds only the deterministic manifest
            // fields, so the trace bytes are identical at any
            // --threads setting.
            let header = TraceHeader::new(bits).with_manifest(
                serde_json::to_value(manifest.deterministic()).expect("manifests serialize"),
            );
            let file = std::fs::File::create(path)
                .map_err(|e| format!("cannot create trace file {path}: {e}"))?;
            let written = write_trace(BufWriter::new(file), &header, events_from_trials(&traces))
                .map_err(|e| e.to_string())?;
            (summary, manifest, Some((path.as_str(), written)))
        }
    };
    if format == OutputFormat::Json {
        let mut params = Map::new();
        params.insert("mechanism".to_owned(), json!(mechanism.name()));
        params.insert("bits".to_owned(), json!(bits));
        params.insert("q".to_owned(), json!(q));
        params.insert("len".to_owned(), json!(len));
        params.insert("trials".to_owned(), json!(trials));
        params.insert("seed".to_owned(), json!(seed));
        params.insert("max_ops".to_owned(), json!(plan.max_ops));
        if let Some(path) = &trace_out {
            params.insert("trace_out".to_owned(), json!(path));
        }
        match mechanism {
            Mechanism::Slotted { slot_len } => {
                params.insert("slot_len".to_owned(), json!(slot_len));
            }
            Mechanism::NoisyCounter { quality } => {
                params.insert("p_loss".to_owned(), json!(quality.p_loss));
                params.insert("delay".to_owned(), json!(quality.delay));
            }
            _ => {}
        }
        let mut body = vec![
            ("manifest", manifest_json(&manifest)),
            (
                "summary",
                serde_json::to_value(&summary).expect("summaries serialize"),
            ),
        ];
        if let Some((path, events)) = capture {
            body.push((
                "trace",
                json!({"schema": TRACE_SCHEMA, "path": path, "events": events}),
            ));
        }
        return Ok(render_json(&json_doc(cmd, Value::Object(params), body)));
    }
    let stat = |s: &StatSummary| {
        format!(
            "{:.6} ± {:.6}  (95% CI [{:.6}, {:.6}])",
            s.mean,
            s.ci95_hi - s.mean,
            s.ci95_lo,
            s.ci95_hi
        )
    };
    let mut out = String::new();
    let _ = writeln!(out, "mechanism       : {}", summary.mechanism);
    let _ = writeln!(out, "bits / q / len  : {bits} / {q} / {len}");
    let _ = writeln!(out, "trials / seed   : {trials} / {seed}");
    // Printed only off the default so the scalar text output stays
    // byte-identical to the pre---kernel rendering.
    if kernel == KernelKind::Bitsliced {
        let _ = writeln!(out, "kernel          : bitsliced (64 trials per u64 lane)");
    }
    let _ = writeln!(out, "rate bits/op    : {}", stat(&summary.rate));
    let _ = writeln!(out, "P_d^            : {}", stat(&summary.p_d));
    let _ = writeln!(out, "P_i^            : {}", stat(&summary.p_i));
    let _ = writeln!(out, "error rate      : {}", stat(&summary.error_rate));
    if let Some((path, events)) = capture {
        let _ = writeln!(
            out,
            "trace           : {path} ({events} events, {TRACE_SCHEMA})"
        );
    }
    let _ = writeln!(
        out,
        "determinism     : per-trial SplitMix64 seeds from master seed {seed}; \
         output is identical at any --threads"
    );
    Ok(out)
}

fn cmd_estimate(args: &[String]) -> CliResult {
    let flags = parse_flags("estimate", ESTIMATE_FLAGS, args)?;
    let format = output_format(&flags)?;
    let source: String = need(&flags, "trace")?;
    let windows: usize = optional(&flags, "windows", DEFAULT_WINDOWS)?;
    if windows == 0 {
        return Err("--windows must be at least 1".to_owned());
    }
    let threads: usize = optional(&flags, "threads", 0)?;
    let label = if source == "-" {
        "<stdin>".to_owned()
    } else {
        source.clone()
    };

    // nsc-lint: allow(wall-clock, reason = "estimate wall-clock feeds manifest.execution, which determinism diffs strip")
    let started = Instant::now();
    let mut reader: TraceReader<Box<dyn BufRead>> = if source == "-" {
        TraceReader::new(Box::new(BufReader::new(std::io::stdin())))
    } else {
        let file = std::fs::File::open(&source)
            .map_err(|e| format!("cannot open trace file {source}: {e}"))?;
        TraceReader::new(Box::new(BufReader::new(file)))
    }
    .map_err(|e| format!("{label}: {e}"))?;
    let header = reader.header().clone();

    let mut builder = InferenceBuilder::new();
    loop {
        match reader.read_event() {
            Ok(Some(event)) => builder.observe(&event),
            Ok(None) => break,
            Err(e) => return Err(format!("{label}: {e}")),
        }
    }
    let events = builder.events();
    let inference = builder
        .finish(windows, threads)
        .map_err(|e| format!("{label}: {e}"))?;
    let bounds =
        capacity_bounds_with_ci(header.alphabet_bits, &inference).map_err(|e| e.to_string())?;
    // Guard the source structs before any JSON rendering: `json!`
    // silently decays a NaN/inf to null, so the check must run here.
    check_finite_json(&inference)
        .and_then(|()| check_finite_json(&bounds))
        .map_err(|e| format!("{label}: {e}"))?;

    let cfg = EngineConfig::seeded(0).with_threads(threads);
    let manifest = RunManifest::new(
        &cfg,
        format!("estimate(trace={label}, events={events}, windows={windows})"),
        Some(events as usize),
    )
    .with_execution(ExecutionReport::collect(
        &cfg,
        events as usize,
        started.elapsed().as_secs_f64(),
        Vec::new(),
    ));

    if format == OutputFormat::Json {
        return Ok(render_json(&json_doc(
            "estimate",
            json!({"trace": label, "windows": windows}),
            vec![
                ("manifest", manifest_json(&manifest)),
                (
                    "trace",
                    json!({
                        "schema": header.schema,
                        "alphabet_bits": header.alphabet_bits,
                        "tick_rate_hz": header.tick_rate_hz,
                        "manifest": header.manifest,
                        "events": events,
                    }),
                ),
                (
                    "results",
                    json!({
                        "counts": inference.counts,
                        "p_d": inference.p_d,
                        "p_i": inference.p_i,
                        "stationarity": inference.stationarity,
                        "bounds": bounds,
                    }),
                ),
            ],
        )));
    }

    let rate = |r: &RateEstimate| {
        format!(
            "{:.6}  (Wilson 95% [{:.6}, {:.6}]; LR 95% [{:.6}, {:.6}]; n = {})",
            r.mle,
            r.wilson.lower,
            r.wilson.upper,
            r.likelihood_ratio.lower,
            r.likelihood_ratio.upper,
            r.trials
        )
    };
    let ci = |c: &CapacityInterval| {
        format!(
            "{:.6} bits/slot  (95% [{:.6}, {:.6}])",
            c.estimate, c.lower, c.upper
        )
    };
    let c = &inference.counts;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace           : {label} ({}, {}-bit alphabet)",
        header.schema, header.alphabet_bits
    );
    let _ = writeln!(
        out,
        "events          : {events} (send {}, del {}, recv {}, ins {}, ack {})",
        c.sends, c.deletions, c.receipts, c.insertions, c.acks
    );
    let _ = writeln!(out, "P_d (MLE)       : {}", rate(&inference.p_d));
    let _ = writeln!(out, "P_i (MLE)       : {}", rate(&inference.p_i));
    let _ = writeln!(
        out,
        "upper bound     : {}  (Theorems 1/4, N(1-P_d))",
        ci(&bounds.upper_bound)
    );
    let _ = writeln!(out, "C_conv          : {}  (eqs. 2-4)", ci(&bounds.conv));
    match &bounds.lower_bound {
        Some(lb) => {
            let _ = writeln!(out, "lower bound     : {}  (Theorem 5)", ci(lb));
        }
        None => {
            let _ = writeln!(
                out,
                "lower bound     : outside Theorem 5's domain (needs p_i < 1, p_d + p_i <= 1)"
            );
        }
    }
    let s = &inference.stationarity;
    if s.stationary {
        let _ = writeln!(
            out,
            "stationarity    : stationary ({} windows, |z| threshold {:.2})",
            s.windows.len(),
            s.threshold
        );
    } else {
        let flagged: Vec<String> = s.flagged.iter().map(usize::to_string).collect();
        let _ = writeln!(
            out,
            "stationarity    : NON-STATIONARY — window(s) {} exceed |z| = {:.2}; \
             the MLE mixes regimes and its intervals are too narrow",
            flagged.join(", "),
            s.threshold
        );
    }
    Ok(out)
}

fn cmd_stc(args: &[String]) -> CliResult {
    let flags = parse_flags("stc", STC_FLAGS, args)?;
    let format = output_format(&flags)?;
    let raw = flags
        .get("durations")
        .ok_or_else(|| "missing required flag --durations".to_owned())?;
    let durations: Vec<f64> = raw
        .split(',')
        .map(|s| {
            s.trim()
                .parse::<f64>()
                .map_err(|_| format!("cannot parse duration `{s}`"))
        })
        .collect::<Result<_, _>>()?;
    let c = noiseless_timing_capacity(&durations).map_err(|e| e.to_string())?;
    if format == OutputFormat::Json {
        return Ok(render_json(&json_doc(
            "stc",
            json!({"durations": durations}),
            vec![("results", json!({"capacity_bits_per_time_unit": c}))],
        )));
    }
    Ok(format!(
        "noiseless timing capacity for durations {durations:?}: {c:.6} bits per time unit\n\
         (Shannon's characteristic root; Moskowitz's Simple Timing Channel)\n"
    ))
}

/// Rejects a probability flag outside `[0, 1]` at the flag boundary,
/// in the standard flag-diagnostic format (mirroring
/// [`reject_non_finite`]).
fn reject_out_of_range(name: &str, value: f64) -> Result<f64, String> {
    if (0.0..=1.0).contains(&value) {
        Ok(value)
    } else {
        Err(format!(
            "flag --{name}: probability must be in [0, 1], got `{value}`"
        ))
    }
}

/// Builds the `--codec` instance for `nsc coded`. Construction seeds
/// are fixed, so the codec — and therefore the campaign summary — is
/// a pure function of the flags.
fn parse_codec(raw: &str, data_bits: usize, block_len: usize) -> Result<Codec, String> {
    match raw {
        "watermark" => Ok(Codec::Watermark(
            WatermarkCode::new(ConvCode::standard_half_rate(), block_len, 0xBEEF)
                .map_err(|e| format!("flag --block-len: {e}"))?,
        )),
        "watermark-ldpc" => Ok(Codec::LdpcWatermark(
            LdpcWatermarkCode::new(data_bits, data_bits, 3, block_len, 0xBEEF)
                .map_err(|e| e.to_string())?,
        )),
        "marker" => Ok(Codec::Marker(MarkerCode::default_params())),
        "repetition" => Ok(Codec::Repetition(
            RepetitionCode::new(5).expect("odd factor"),
        )),
        "sequential" => Ok(Codec::Sequential {
            code: ConvCode::standard_half_rate(),
            max_expansions: 100_000,
        }),
        other => Err(format!(
            "flag --codec: expected `watermark`, `watermark-ldpc`, `marker`, `repetition`, or `sequential`, got `{other}`{}",
            value_suggestion(
                other,
                &["watermark", "watermark-ldpc", "marker", "repetition", "sequential"]
            )
        )),
    }
}

/// `nsc coded` — an engine-scale coded campaign: encode → deletion-
/// insertion channel → scratch-reused decode (DESIGN §13).
fn cmd_coded(args: &[String]) -> CliResult {
    let flags = parse_flags("coded", CODED_FLAGS, args)?;
    let format = output_format(&flags)?;
    let codec_name: String = need(&flags, "codec")?;
    let data_bits: usize = optional(&flags, "data-bits", 64)?;
    if data_bits == 0 {
        return Err(
            "flag --data-bits: a frame must carry at least one data bit, got `0`".to_owned(),
        );
    }
    let p_d = reject_out_of_range("p-d", need_finite(&flags, "p-d")?)?;
    let p_i = reject_out_of_range("p-i", optional_finite(&flags, "p-i", 0.0)?)?;
    let p_s = reject_out_of_range("p-s", optional_finite(&flags, "p-s", 0.0)?)?;
    let trials: usize = optional(&flags, "trials", 32)?;
    if trials == 0 {
        return Err("--trials must be at least 1".to_owned());
    }
    let seed: u64 = optional(&flags, "seed", 0)?;
    let threads: usize = optional(&flags, "threads", 0)?;
    let block_len: usize = optional(&flags, "block-len", 3)?;
    if flags.contains_key("block-len")
        && !matches!(codec_name.as_str(), "watermark" | "watermark-ldpc")
    {
        return Err(format!(
            "flag --block-len does not apply to codec `{codec_name}` (applies to: watermark, watermark-ldpc)"
        ));
    }
    let backend = match flags.get("decoder").map(String::as_str) {
        None | Some("scratch") => DecoderBackend::Scratch,
        Some("allocating") => DecoderBackend::Allocating,
        Some(other) => {
            return Err(format!(
                "flag --decoder: expected `scratch` or `allocating`, got `{other}`{}",
                value_suggestion(other, &["scratch", "allocating"])
            ))
        }
    };
    let codec = parse_codec(&codec_name, data_bits, block_len)?;
    let plan = CodedPlan {
        data_bits,
        p_d,
        p_i,
        p_s,
    };
    let cfg = EngineConfig::seeded(seed).with_threads(threads);
    let (summary, manifest) =
        run_coded_campaign_with(&cfg, &codec, &plan, trials, backend).map_err(|e| e.to_string())?;
    if format == OutputFormat::Json {
        // The decoder backend is an execution strategy, not a model
        // parameter: both backends produce bit-identical summaries, so
        // it is recorded inside `manifest.execution` — the one section
        // determinism checks strip — and nowhere else.
        let mut mjson = manifest_json(&manifest);
        if let Some(exec) = mjson.get_mut("execution").and_then(Value::as_object_mut) {
            exec.insert("decoder".to_owned(), json!(backend.name()));
        }
        return Ok(render_json(&json_doc(
            "coded",
            json!({
                "codec": summary.codec,
                "data_bits": data_bits,
                "p_d": p_d,
                "p_i": p_i,
                "p_s": p_s,
                "trials": trials,
                "seed": seed,
            }),
            vec![
                ("manifest", mjson),
                (
                    "results",
                    serde_json::to_value(&summary).expect("summaries serialize"),
                ),
            ],
        )));
    }
    let stat = |s: &StatSummary| {
        format!(
            "{:.6}  (95% CI [{:.6}, {:.6}])",
            s.mean, s.ci95_lo, s.ci95_hi
        )
    };
    let mut out = String::new();
    let _ = writeln!(out, "codec           : {}", summary.codec);
    let _ = writeln!(out, "data bits/frame : {data_bits}");
    let _ = writeln!(out, "P_d / P_i / P_s : {p_d} / {p_i} / {p_s}");
    let _ = writeln!(out, "trials          : {trials}  (seed {seed})");
    let _ = writeln!(
        out,
        "nominal rate    : {:.6} data bits per channel bit",
        summary.nominal_rate
    );
    let _ = writeln!(out, "BER             : {}", stat(&summary.ber));
    let _ = writeln!(out, "frame success   : {}", stat(&summary.frame_success));
    let _ = writeln!(
        out,
        "effective rate  : {:.6}  (nominal rate × frame success)",
        summary.effective_rate
    );
    let _ = writeln!(out, "decode failures : {}", summary.decode_failures);
    let _ = writeln!(
        out,
        "decoder         : {}  (both backends are bit-identical)",
        backend.name()
    );
    Ok(out)
}

fn cmd_bench(args: &[String]) -> CliResult {
    let flags = parse_flags("bench", BENCH_FLAGS, args)?;
    let format = output_format(&flags)?;
    let suite: String = optional(&flags, "suite", "all".to_owned())?;
    let profile_name: String = optional(&flags, "profile", "full".to_owned())?;
    let profile = Profile::parse(&profile_name).ok_or_else(|| {
        format!("flag --profile: expected `quick` or `full`, got `{profile_name}`")
    })?;
    let reps: usize = optional(&flags, "reps", 5)?;
    if reps == 0 {
        return Err("--reps must be at least 1".to_owned());
    }
    let kernels: &[KernelKind] = match flags.get("kernel").map(String::as_str) {
        None | Some("all") => &[KernelKind::Scalar, KernelKind::Bitsliced],
        Some("scalar") => &[KernelKind::Scalar],
        Some("bitsliced") => &[KernelKind::Bitsliced],
        Some(other) => {
            return Err(format!(
                "flag --kernel: expected `scalar`, `bitsliced`, or `all`, got `{other}`{}",
                value_suggestion(other, &["scalar", "bitsliced", "all"])
            ))
        }
    };
    let suites: Vec<SuiteReport> = match suite.as_str() {
        "engine" => vec![perf::engine_suite(profile, reps, kernels)],
        "trace" => vec![perf::trace_suite(profile, reps)],
        "atlas" => vec![perf::atlas_suite(profile, reps)],
        "coding" => vec![perf::coding_suite(profile, reps)],
        "all" => vec![
            perf::engine_suite(profile, reps, kernels),
            perf::trace_suite(profile, reps),
            perf::atlas_suite(profile, reps),
            perf::coding_suite(profile, reps),
        ],
        other => {
            return Err(format!(
                "flag --suite: expected `engine`, `trace`, `atlas`, `coding`, or `all`, got `{other}`{}",
                value_suggestion(other, &["engine", "trace", "atlas", "coding", "all"])
            ))
        }
    };
    if format == OutputFormat::Json {
        return Ok(render_json(&json_doc(
            "bench",
            json!({
                "suite": suite,
                "profile": profile.name(),
                "reps": reps,
                "bench_schema": perf::BENCH_SCHEMA,
            }),
            vec![
                ("fingerprint", perf::machine_fingerprint()),
                (
                    "suites",
                    serde_json::to_value(&suites).expect("suite reports serialize"),
                ),
            ],
        )));
    }
    let mut out = String::new();
    for s in &suites {
        let _ = writeln!(
            out,
            "suite {} (profile {}, {} reps; median ns/op):",
            s.suite, s.profile, s.reps
        );
        for r in &s.results {
            let _ = write!(
                out,
                "  {:<26} {:>12.1} ns/{}  ({} ops per rep)",
                r.name, r.median_ns_per_op, r.unit, r.ops
            );
            // Present when the binary registers CountingAlloc (the
            // `nsc` binary does); omitted in harnesses that don't.
            match r.allocs_per_iter {
                Some(allocs) => {
                    let _ = writeln!(out, "  [{allocs} allocs/iter]");
                }
                None => out.push('\n'),
            }
        }
    }
    out.push_str(
        "\nabsolute ns/op is machine-specific: compare runs only on the same\n\
         fingerprint (--format json records it), or compare the within-run\n\
         ratios, which scripts/bench_export guards in CI\n",
    );
    Ok(out)
}

/// Parses an atlas axis flag: either `start:end:points` or a single
/// fixed value.
fn parse_atlas_grid(
    flags: &BTreeMap<String, String>,
    name: &str,
    default: &str,
) -> Result<Grid, String> {
    let raw = flags.get(name).map_or(default, String::as_str);
    let num = |s: &str| -> Result<f64, String> {
        let v: f64 = s
            .trim()
            .parse()
            .map_err(|_| format!("flag --{name}: cannot parse `{s}` in `{raw}`"))?;
        if v.is_finite() {
            Ok(v)
        } else {
            Err(format!(
                "flag --{name}: expected a finite number in `{raw}`"
            ))
        }
    };
    let parts: Vec<&str> = raw.split(':').collect();
    match parts.as_slice() {
        [value] => Ok(Grid::fixed(num(value)?)),
        [start, end, points] => {
            let points: usize = points
                .trim()
                .parse()
                .map_err(|_| format!("flag --{name}: cannot parse point count in `{raw}`"))?;
            Grid::new(num(start)?, num(end)?, points).map_err(|e| format!("flag --{name}: {e}"))
        }
        _ => Err(format!(
            "flag --{name}: expected `start:end:points` or a single value, got `{raw}`"
        )),
    }
}

/// `nsc atlas run|resume|report` — the resumable capacity atlas.
fn cmd_atlas(args: &[String]) -> CliResult {
    let Some((mode, rest)) = args.split_first() else {
        return Err("atlas needs a mode: nsc atlas run|resume|report [--flags]".to_owned());
    };
    let mode = mode.as_str();
    if !matches!(mode, "run" | "resume" | "report") {
        return Err(format!(
            "unknown atlas mode `{mode}` (expected run | resume | report){}",
            value_suggestion(mode, &["run", "resume", "report"])
        ));
    }
    let flags = parse_flags("atlas", ATLAS_FLAGS, rest)?;
    let format = output_format(&flags)?;
    let store_path: String = need(&flags, "store")?;
    let widths_raw: String = optional(&flags, "widths", "1,4".to_owned())?;
    let widths: Vec<u32> = widths_raw
        .split(',')
        .map(|s| {
            s.trim()
                .parse()
                .map_err(|_| format!("flag --widths: cannot parse `{s}`"))
        })
        .collect::<Result<_, _>>()?;
    let p_d = parse_atlas_grid(&flags, "p-d", "0:0.5:4")?;
    let p_i = parse_atlas_grid(&flags, "p-i", "0:0.5:4")?;
    let mech_name: String = optional(&flags, "mechanism", "counter".to_owned())?;
    let mechanism = match mech_name.as_str() {
        "unsync" => Mechanism::Unsynchronized,
        "counter" => Mechanism::Counter,
        "slotted" => Mechanism::Slotted {
            slot_len: optional(&flags, "slot-len", 8)?,
        },
        other => {
            return Err(format!(
                "unknown atlas mechanism `{other}` (expected unsync | counter | slotted; \
                 the atlas only runs kernel-equivalent mechanisms){}",
                value_suggestion(other, &["unsync", "counter", "slotted"])
            ))
        }
    };
    check_mechanism_flags(&flags, ATLAS_FLAGS, mechanism.name())?;
    let trials: usize = optional(&flags, "trials", 32)?;
    let len: usize = optional(&flags, "len", 128)?;
    let seed: u64 = optional(&flags, "seed", 0)?;
    let batch: usize = optional(&flags, "batch", 32)?;
    let shards: usize = optional(&flags, "shards", DEFAULT_SHARDS)?;
    if shards == 0 {
        return Err("--shards must be at least 1".to_owned());
    }
    let threads: usize = optional(&flags, "threads", 0)?;
    let kernel = parse_kernel(&flags)?;
    let max_cells: Option<usize> = match flags.get("max-cells") {
        None => None,
        Some(raw) => Some(
            raw.parse()
                .map_err(|_| format!("flag --max-cells: cannot parse `{raw}`"))?,
        ),
    };
    if mode == "report" && max_cells.is_some() {
        return Err("--max-cells does not apply to `atlas report` (it never simulates)".to_owned());
    }
    if mode != "run" && flags.contains_key("shards") {
        return Err(format!(
            "--shards applies to `atlas run` on a fresh store only; \
             `atlas {mode}` takes the shard count from the store's meta.json"
        ));
    }
    let spec = AtlasSpec {
        widths,
        p_d,
        p_i,
        mechanism,
        trials,
        message_len: len,
        master_seed: seed,
        batch_size: batch,
    };

    // nsc-lint: allow(wall-clock, reason = "atlas wall-clock feeds manifest.execution, which determinism diffs strip")
    let started = Instant::now();
    let mut store = match mode {
        "run" => AtlasStore::create_or_open(&store_path, shards),
        // resume/report refuse to invent an empty store: a missing
        // one means the path is wrong, not that there is no work.
        _ => AtlasStore::open(&store_path),
    }
    .map_err(|e| e.to_string())?;
    let (atlas, totals) = if mode == "report" {
        let atlas = nsc_atlas::report(&store, &spec).map_err(|e| e.to_string())?;
        let cached = atlas.totals.cells;
        (
            atlas,
            RunTotals {
                computed: 0,
                cached,
                pending: 0,
            },
        )
    } else {
        nsc_atlas::run(&mut store, &spec, threads, kernel, max_cells).map_err(|e| e.to_string())?
    };

    if format == OutputFormat::Json {
        // `mode` and `store` are deliberately NOT params: which
        // invocation produced a report (run vs resume vs report) and
        // where the store lives are observational, so they join the
        // execution section below and `del(.manifest.execution)`
        // alone makes fresh and resumed documents byte-identical.
        let mut params = Map::new();
        params.insert("mechanism".to_owned(), json!(mechanism.name()));
        if let Mechanism::Slotted { slot_len } = mechanism {
            params.insert("slot_len".to_owned(), json!(slot_len));
        }
        params.insert("widths".to_owned(), json!(spec.widths));
        params.insert(
            "p_d".to_owned(),
            serde_json::to_value(spec.p_d).expect("grids serialize"),
        );
        params.insert(
            "p_i".to_owned(),
            serde_json::to_value(spec.p_i).expect("grids serialize"),
        );
        params.insert("trials".to_owned(), json!(trials));
        params.insert("len".to_owned(), json!(len));
        params.insert("seed".to_owned(), json!(seed));
        params.insert("batch".to_owned(), json!(batch));
        params.insert("shards".to_owned(), json!(store.shards()));
        // Hand-built manifest with the same shape contract as the
        // engine's RunManifest: everything observational — including
        // the cache-hit split, which depends on what a previous
        // (possibly killed) run left behind — lives under
        // `execution`, so `del(.manifest.execution)` yields a
        // byte-stable document.
        let manifest = json!({
            "engine_version": ENGINE_VERSION,
            "plan": spec.describe(),
            "master_seed": seed,
            "batch_size": batch,
            "trials": trials,
            "execution": {
                "mode": mode,
                "store": store_path,
                "threads_requested": threads,
                "kernel": kernel,
                "wall_secs": started.elapsed().as_secs_f64(),
                "computed_cells": totals.computed,
                "cached_cells": totals.cached,
                "pending_cells": totals.pending,
            },
        });
        return Ok(render_json(&json_doc(
            "atlas",
            Value::Object(params),
            vec![
                ("manifest", manifest),
                (
                    "atlas",
                    serde_json::to_value(&atlas).expect("atlas reports serialize"),
                ),
            ],
        )));
    }
    Ok(render_atlas_text(
        &store_path,
        &store,
        &spec,
        &atlas,
        &totals,
    ))
}

/// Human-readable atlas rendering: run summary, verdict totals, and
/// one row per completed cell.
fn render_atlas_text(
    store_path: &str,
    store: &AtlasStore,
    spec: &AtlasSpec,
    atlas: &AtlasReport,
    totals: &RunTotals,
) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "store           : {store_path} ({} shard(s), {})",
        store.shards(),
        atlas.schema
    );
    let _ = writeln!(out, "spec            : {}", spec.describe());
    let _ = writeln!(
        out,
        "cells           : {} completed, {} skipped (outside the simplex)",
        atlas.totals.cells, atlas.totals.skipped
    );
    let _ = writeln!(
        out,
        "this invocation : {} computed, {} cached, {} pending",
        totals.computed, totals.cached, totals.pending
    );
    let _ = writeln!(
        out,
        "theorem 5       : loose at {} cell(s) (best lower < {:.0}% of the upper bound), \
         beaten at {}",
        atlas.totals.theorem5_loose,
        100.0 * nsc_atlas::THEOREM5_LOOSE_THRESHOLD,
        atlas.totals.theorem5_beaten
    );
    let _ = writeln!(
        out,
        "{:>3} {:>6} {:>6} {:>8} {:>8} {:>8} {:>8}  {:<10} {:>7}",
        "N", "P_d", "P_i", "upper", "thm5", "km", "vtr", "best", "tight"
    );
    let opt = |v: Option<f64>| match v {
        Some(x) => format!("{x:>8.3}"),
        None => format!("{:>8}", "-"),
    };
    for r in &atlas.cells {
        let b = &r.result.bounds;
        let v = &r.result.verdict;
        let tight = match v.tightness {
            Some(t) => format!("{:>6.1}%", 100.0 * t),
            None => format!("{:>7}", "-"),
        };
        let _ = writeln!(
            out,
            "{:>3} {:>6.3} {:>6.3} {:>8.3} {} {} {}  {:<10} {tight}{}",
            r.manifest.bits,
            r.manifest.p_d,
            r.manifest.p_i,
            b.upper.value(),
            opt(b.theorem5.map(|x| x.value())),
            opt(b.kanoria_montanari.map(|x| x.value())),
            opt(b.vtr.map(|x| x.value())),
            v.best_lower_family.as_deref().unwrap_or("-"),
            if v.theorem5_loose { "  [loose]" } else { "" }
        );
    }
    if totals.pending > 0 {
        let _ = writeln!(
            out,
            "\npartial atlas: {} cell(s) still pending — rerun (or `nsc atlas resume`) \
             to finish; completed cells are cached and will not re-simulate",
            totals.pending
        );
    }
    out
}

/// The endpoints named by `--tcp` / `--unix`, TCP first (the
/// preferred endpoint when a single one is needed, e.g. `--status`).
fn serve_endpoints(cmd: &str, flags: &BTreeMap<String, String>) -> Result<Vec<Endpoint>, String> {
    let mut endpoints = Vec::new();
    if let Some(addr) = flags.get("tcp") {
        endpoints.push(Endpoint::Tcp(addr.clone()));
    }
    if let Some(path) = flags.get("unix") {
        #[cfg(unix)]
        endpoints.push(Endpoint::Unix(std::path::PathBuf::from(path)));
        #[cfg(not(unix))]
        {
            let _ = path;
            return Err("--unix sockets are unsupported on this platform".to_owned());
        }
    }
    if endpoints.is_empty() {
        return Err(format!(
            "{cmd} needs at least one endpoint: --tcp ADDR and/or --unix PATH"
        ));
    }
    Ok(endpoints)
}

fn render_status_text(status: &Value) -> String {
    let mut out = String::new();
    let totals = &status["totals"];
    let throughput = &status["throughput"];
    let _ = writeln!(
        out,
        "streams         : {} ({} connections, {} events)",
        totals["streams"], totals["connections"], totals["events"]
    );
    let _ = writeln!(
        out,
        "throughput      : {:.0} events/sec over {:.3}s ingest (uptime {:.3}s)",
        throughput["events_per_sec"].as_f64().unwrap_or(0.0),
        throughput["ingest_secs"].as_f64().unwrap_or(0.0),
        throughput["uptime_secs"].as_f64().unwrap_or(0.0)
    );
    let empty = Vec::new();
    for s in status["streams"].as_array().unwrap_or(&empty) {
        let label = format!("stream {}", s["stream"]);
        match s["status"].as_str().unwrap_or("?") {
            "ok" => {
                let _ = writeln!(
                    out,
                    "{label:<16}: {} events, P_d {:.6}, P_i {:.6}, upper {:.6} bits/slot",
                    s["events"],
                    s["p_d"]["mle"].as_f64().unwrap_or(0.0),
                    s["p_i"]["mle"].as_f64().unwrap_or(0.0),
                    s["bounds"]["upper_bound"]["estimate"]
                        .as_f64()
                        .unwrap_or(0.0)
                );
            }
            other => {
                let _ = writeln!(
                    out,
                    "{label:<16}: {} events, {other} ({})",
                    s["events"],
                    s["reason"].as_str().unwrap_or("no reason recorded")
                );
            }
        }
        if let Some(error) = s["error"].as_str() {
            let _ = writeln!(out, "{:<16}: stream error: {error}", "");
        }
    }
    out
}

fn cmd_serve(args: &[String]) -> CliResult {
    let flags = parse_flags("serve", SERVE_FLAGS, args)?;
    let format = output_format(&flags)?;
    let shards: usize = optional(&flags, "shards", 8)?;
    if shards == 0 {
        return Err("--shards must be at least 1".to_owned());
    }
    let windows: usize = optional(&flags, "windows", DEFAULT_WINDOWS)?;
    if windows == 0 {
        return Err("--windows must be at least 1".to_owned());
    }
    let threads: usize = optional(&flags, "threads", 0)?;
    let endpoints = serve_endpoints("serve", &flags)?;
    if flags.contains_key("status") {
        let status = query_status(&endpoints[0])?;
        // The server already guards its own floats; re-checking the
        // parsed reply keeps the client honest about what it prints.
        check_finite_json(&status).map_err(|e| e.to_string())?;
        if format == OutputFormat::Json {
            return Ok(render_json(&status));
        }
        return Ok(render_status_text(&status));
    }
    let server = Server::bind(
        &endpoints,
        ServeConfig {
            shards,
            windows,
            threads,
        },
    )
    .map_err(|e| format!("cannot bind server: {e}"))?;
    if let Some(addr) = server.tcp_addr() {
        eprintln!("nsc serve: listening on tcp {addr}");
    }
    server.wait();
    Ok(String::new())
}

fn cmd_loadgen(args: &[String]) -> CliResult {
    let flags = parse_flags("loadgen", LOADGEN_FLAGS, args)?;
    let format = output_format(&flags)?;
    let trace: String = need(&flags, "trace")?;
    let connections: usize = optional(&flags, "connections", 1)?;
    if connections == 0 {
        return Err("--connections must be at least 1".to_owned());
    }
    let rate: f64 = optional_finite(&flags, "rate", 0.0)?;
    if rate < 0.0 {
        return Err(format!("flag --rate: must be non-negative, got `{rate}`"));
    }
    let repeat: u64 = optional(&flags, "repeat", 1)?;
    if repeat == 0 {
        return Err("--repeat must be at least 1".to_owned());
    }
    let endpoints = serve_endpoints("loadgen", &flags)?;
    let config = LoadgenConfig {
        connections,
        rate,
        repeat,
    };
    let report = replay_trace(&endpoints[0], std::path::Path::new(&trace), &config)?;
    if format == OutputFormat::Json {
        let doc = json_doc(
            "loadgen",
            json!({
                "trace": trace,
                "connections": connections,
                "rate": rate,
                "repeat": repeat,
            }),
            vec![("results", report.json())],
        );
        check_finite_json(&doc).map_err(|e| e.to_string())?;
        return Ok(render_json(&doc));
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "replayed        : {trace} × {repeat} over {connections} connection(s)"
    );
    let _ = writeln!(
        out,
        "events          : {} total ({} per connection)",
        report.events_sent, report.events_per_connection
    );
    let _ = writeln!(
        out,
        "throughput      : {:.0} events/sec over {:.3}s",
        report.events_per_sec, report.wall_secs
    );
    let errors = report
        .acks
        .iter()
        .filter(|a| a.get("error").is_some())
        .count();
    let _ = writeln!(
        out,
        "acks            : {} ok, {} with errors",
        report.acks.len() - errors,
        errors
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_str(args: &[&str]) -> CliResult {
        run(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    fn parse_json(out: &str) -> Value {
        serde_json::from_str(out).expect("CLI --format json emits valid JSON")
    }

    /// Strips the observational `manifest.execution` section — the
    /// only part of a JSON document allowed to differ between runs.
    fn strip_execution(doc: &mut Value) {
        if let Some(manifest) = doc.get_mut("manifest").and_then(Value::as_object_mut) {
            manifest.remove("execution");
        }
    }

    #[test]
    fn help_and_unknown() {
        assert!(run_str(&["help"]).unwrap().contains("USAGE"));
        assert!(run_str(&[]).is_err());
        assert!(run_str(&["frobnicate"]).unwrap_err().contains("unknown"));
    }

    #[test]
    fn usage_documents_every_flag() {
        let text = usage();
        for (name, spec, _) in SUBCOMMANDS {
            assert!(text.contains(&format!("nsc {name}")), "{name} missing");
            for f in *spec {
                assert!(
                    text.contains(&format!("--{}", f.name)),
                    "--{} missing",
                    f.name
                );
            }
        }
        // The once-undocumented flags are now in the usage text.
        assert!(text.contains("--max-ops"));
        assert!(text.contains("--format"));
    }

    #[test]
    fn bounds_happy_path() {
        let out = run_str(&["bounds", "--bits", "8", "--p-d", "0.25"]).unwrap();
        assert!(out.contains("upper bound     : 6.000000"));
        assert!(out.contains("achievable      : 6.000000"));
    }

    #[test]
    fn bounds_golden_text_output() {
        // The full text rendering, byte for byte: the --format flag
        // must leave the default output exactly as it was before the
        // flag existed.
        let golden = "symbol width    : 8 bits\n\
                      P_d / P_i       : 0.25 / 0\n\
                      achievable      : 6.000000 bits/slot  (Theorem 5)\n\
                      upper bound     : 6.000000 bits/slot  (Theorem 4, N(1-P_d))\n\
                      tightness       : 100.0%\n";
        let default = run_str(&["bounds", "--bits", "8", "--p-d", "0.25"]).unwrap();
        assert_eq!(default, golden);
        let explicit =
            run_str(&["bounds", "--bits", "8", "--p-d", "0.25", "--format", "text"]).unwrap();
        assert_eq!(explicit, golden);
    }

    #[test]
    fn bounds_with_insertions() {
        let out = run_str(&["bounds", "--bits", "4", "--p-d", "0.1", "--p-i", "0.1"]).unwrap();
        assert!(out.contains("Theorem 5"));
        assert!(out.contains("tightness"));
    }

    #[test]
    fn bounds_flag_errors() {
        assert!(run_str(&["bounds", "--bits", "8"])
            .unwrap_err()
            .contains("--p-d"));
        assert!(run_str(&["bounds", "--bits", "x", "--p-d", "0.1"])
            .unwrap_err()
            .contains("cannot parse"));
        assert!(run_str(&["bounds", "bits"]).unwrap_err().contains("--flag"));
        assert!(run_str(&["bounds", "--bits"])
            .unwrap_err()
            .contains("needs a value"));
        // Out-of-range probability propagates the library error.
        assert!(run_str(&["bounds", "--bits", "4", "--p-d", "1.5"]).is_err());
    }

    #[test]
    fn unknown_flags_rejected_with_suggestion() {
        // The motivating bugs: typo'd flags used to be silently
        // ignored and the defaults ran instead.
        let err = run_str(&[
            "trials",
            "--mechanism",
            "counter",
            "--bits",
            "2",
            "--trails",
            "64",
        ])
        .unwrap_err();
        assert!(err.contains("unknown flag --trails"), "{err}");
        assert!(err.contains("did you mean --trials"), "{err}");
        let err = run_str(&[
            "trials",
            "--mechanism",
            "counter",
            "--bits",
            "2",
            "--sed",
            "7",
        ])
        .unwrap_err();
        assert!(err.contains("did you mean --seed"), "{err}");
        // No close match: no hint, but the valid flags are listed.
        let err =
            run_str(&["bounds", "--bits", "4", "--p-d", "0.1", "--frobnicate", "1"]).unwrap_err();
        assert!(err.contains("unknown flag --frobnicate"), "{err}");
        assert!(!err.contains("did you mean"), "{err}");
        assert!(
            err.contains("valid flags: --bits, --p-d, --p-i, --format"),
            "{err}"
        );
        // Flags from *other* subcommands are just as unknown.
        assert!(run_str(&[
            "bounds",
            "--bits",
            "4",
            "--p-d",
            "0.1",
            "--durations",
            "1,2"
        ])
        .unwrap_err()
        .contains("unknown flag --durations"));
    }

    #[test]
    fn inapplicable_mechanism_flags_rejected() {
        let err = run_str(&[
            "trials",
            "--mechanism",
            "counter",
            "--bits",
            "2",
            "--slot-len",
            "4",
        ])
        .unwrap_err();
        assert!(err.contains("--slot-len does not apply"), "{err}");
        assert!(err.contains("`counter`"), "{err}");
        assert!(err.contains("slotted"), "{err}");
        assert!(run_str(&[
            "trials",
            "--mechanism",
            "unsync",
            "--bits",
            "1",
            "--p-loss",
            "0.1"
        ])
        .unwrap_err()
        .contains("--p-loss does not apply"));
        // The same flags are accepted by the mechanisms they fit.
        assert!(run_str(&[
            "trials",
            "--mechanism",
            "slotted",
            "--bits",
            "1",
            "--len",
            "64",
            "--trials",
            "3",
            "--slot-len",
            "4"
        ])
        .is_ok());
    }

    #[test]
    fn duplicate_flags_rejected() {
        assert!(
            run_str(&["bounds", "--bits", "4", "--bits", "8", "--p-d", "0.1"])
                .unwrap_err()
                .contains("more than once")
        );
    }

    #[test]
    fn format_flag_validated() {
        assert!(
            run_str(&["bounds", "--bits", "4", "--p-d", "0.1", "--format", "yaml"])
                .unwrap_err()
                .contains("--format")
        );
    }

    #[test]
    fn correct_matches_recipe() {
        let out = run_str(&[
            "correct",
            "--traditional",
            "100",
            "--deletions",
            "300",
            "--attempts",
            "1000",
        ])
        .unwrap();
        assert!(out.contains("corrected       : 70.0000"), "{out}");
        assert!(out.contains("severity"));
    }

    #[test]
    fn convert_matches_formula() {
        let out = run_str(&["convert", "--bits", "4", "--p-i", "0.0"]).unwrap();
        assert!(out.contains("= 4.000000"));
    }

    #[test]
    fn sweep_renders_grid() {
        let out = run_str(&["sweep", "--bits", "2", "--points", "4"]).unwrap();
        assert!(out.contains("Pd\\Pi"));
        assert!(out.contains("-"));
        assert!(run_str(&["sweep", "--bits", "2", "--points", "1"]).is_err());
    }

    #[test]
    fn sweep_seed_flag_threads_through() {
        // The seed is recorded in the manifest (analytic sweeps never
        // consume randomness, so the surface itself is unchanged).
        let out = run_str(&[
            "sweep", "--bits", "2", "--points", "4", "--seed", "9", "--format", "json",
        ])
        .unwrap();
        let doc = parse_json(&out);
        assert_eq!(doc["manifest"]["master_seed"], 9);
        assert_eq!(doc["params"]["seed"], 9);
        // Same surface as the default seed.
        let a = run_str(&["sweep", "--bits", "2", "--points", "4", "--seed", "9"]).unwrap();
        let b = run_str(&["sweep", "--bits", "2", "--points", "4"]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn trials_output_identical_across_thread_counts() {
        // The CLI-level determinism contract: only wall-clock time may
        // depend on --threads.
        let base = [
            "trials",
            "--mechanism",
            "counter",
            "--bits",
            "2",
            "--len",
            "200",
            "--trials",
            "12",
            "--seed",
            "7",
        ];
        let with_threads = |t: &str| {
            let mut args: Vec<&str> = base.to_vec();
            args.extend(["--threads", t]);
            run_str(&args).unwrap()
        };
        let one = with_threads("1");
        assert_eq!(one, with_threads("4"));
        assert_eq!(one, with_threads("0"));
        assert!(one.contains("mechanism       : counter"), "{one}");
        assert!(one.contains("95% CI"), "{one}");
    }

    #[test]
    fn trials_json_round_trip() {
        let out = run_str(&[
            "trials",
            "--mechanism",
            "counter",
            "--bits",
            "2",
            "--len",
            "200",
            "--trials",
            "12",
            "--seed",
            "7",
            "--format",
            "json",
        ])
        .unwrap();
        let doc = parse_json(&out);
        assert_eq!(doc["schema"], JSON_SCHEMA);
        assert_eq!(doc["command"], "trials");
        assert_eq!(doc["params"]["mechanism"], "counter");
        assert_eq!(doc["params"]["trials"], 12);
        // The manifest makes the run reproducible from its own output…
        let manifest = &doc["manifest"];
        assert_eq!(manifest["master_seed"], 7);
        assert_eq!(manifest["batch_size"], 32);
        assert_eq!(manifest["trials"], 12);
        assert!(manifest["engine_version"].is_string());
        assert!(manifest["plan"].as_str().unwrap().contains("counter"));
        // …and reports how it executed.
        let exec = &manifest["execution"];
        assert!(exec["effective_threads"].as_u64().unwrap() >= 1);
        assert!(exec["wall_secs"].as_f64().unwrap() >= 0.0);
        assert!(exec["trials_per_sec"].is_number());
        let batches = exec["batches"].as_array().unwrap();
        assert_eq!(batches.len(), 1); // 12 trials, batch size 32
        assert_eq!(batches[0]["trials"], 12);
        // The summary statistics parse as numbers.
        assert!(doc["summary"]["rate"]["mean"].is_number());
        assert!(doc["summary"]["rate"]["ci95_lo"].is_number());
    }

    #[test]
    fn trials_json_deterministic_across_threads_sans_timing() {
        let json_with_threads = |t: &str| {
            run_str(&[
                "trials",
                "--mechanism",
                "counter",
                "--bits",
                "2",
                "--len",
                "200",
                "--trials",
                "40",
                "--seed",
                "7",
                "--threads",
                t,
                "--format",
                "json",
            ])
            .unwrap()
        };
        let mut one = parse_json(&json_with_threads("1"));
        let mut four = parse_json(&json_with_threads("4"));
        // Timing may differ…
        strip_execution(&mut one);
        strip_execution(&mut four);
        // …but nothing else may, down to the serialized bytes.
        assert_eq!(
            serde_json::to_string_pretty(&one).unwrap(),
            serde_json::to_string_pretty(&four).unwrap()
        );
    }

    #[test]
    fn analytic_commands_emit_json() {
        let doc = parse_json(
            &run_str(&["bounds", "--bits", "8", "--p-d", "0.25", "--format", "json"]).unwrap(),
        );
        assert_eq!(doc["command"], "bounds");
        assert_eq!(doc["results"]["achievable_bits_per_slot"], 6.0);
        assert_eq!(doc["results"]["upper_bound_bits_per_slot"], 6.0);

        let doc = parse_json(
            &run_str(&[
                "correct",
                "--traditional",
                "100",
                "--deletions",
                "300",
                "--attempts",
                "1000",
                "--format",
                "json",
            ])
            .unwrap(),
        );
        assert_eq!(doc["command"], "correct");
        assert!(doc["results"]["report"]["corrected"].is_number());
        assert!(doc["results"]["severity"].is_string());

        let doc = parse_json(
            &run_str(&["convert", "--bits", "4", "--p-i", "0.0", "--format", "json"]).unwrap(),
        );
        assert_eq!(doc["results"]["c_conv_bits_per_symbol"], 4.0);

        let doc = parse_json(&run_str(&["stc", "--durations", "1,2", "--format", "json"]).unwrap());
        let c = doc["results"]["capacity_bits_per_time_unit"]
            .as_f64()
            .unwrap();
        assert!((c - 0.694_242).abs() < 1e-6);
    }

    #[test]
    fn trials_bitsliced_kernel_matches_scalar_json() {
        // The CLI face of the kernel-equivalence contract: at any
        // thread count, scalar and bitsliced JSON differ only in
        // manifest.execution (where the kernel itself is reported).
        let json_with = |kernel: &str, threads: &str| {
            run_str(&[
                "trials",
                "--mechanism",
                "counter",
                "--bits",
                "2",
                "--len",
                "200",
                "--trials",
                "70",
                "--seed",
                "7",
                "--threads",
                threads,
                "--kernel",
                kernel,
                "--format",
                "json",
            ])
            .unwrap()
        };
        let mut scalar = parse_json(&json_with("scalar", "1"));
        for threads in ["1", "4"] {
            let mut bitsliced = parse_json(&json_with("bitsliced", threads));
            assert_eq!(bitsliced["manifest"]["execution"]["kernel"], "bitsliced");
            strip_execution(&mut scalar);
            strip_execution(&mut bitsliced);
            assert_eq!(
                serde_json::to_string_pretty(&scalar).unwrap(),
                serde_json::to_string_pretty(&bitsliced).unwrap()
            );
        }
        // The kernel is an execution detail, not a parameter: it must
        // stay out of `params`, or the equivalence diff above (and the
        // CI job mirroring it) would be vacuous.
        assert!(scalar["params"].get("kernel").is_none());
    }

    #[test]
    fn trials_kernel_flag_errors_and_text() {
        // Typo'd kernel values get the did-you-mean treatment.
        let err = run_str(&[
            "trials",
            "--mechanism",
            "counter",
            "--bits",
            "2",
            "--kernel",
            "bitslice",
        ])
        .unwrap_err();
        assert!(err.contains("flag --kernel"), "{err}");
        assert!(err.contains("did you mean `bitsliced`"), "{err}");
        // Mechanisms without a bitsliced twin are rejected by the
        // engine with a pointer back to --kernel scalar.
        let err = run_str(&[
            "trials",
            "--mechanism",
            "stop-wait",
            "--bits",
            "1",
            "--len",
            "64",
            "--trials",
            "3",
            "--kernel",
            "bitsliced",
        ])
        .unwrap_err();
        assert!(err.contains("no bitsliced kernel"), "{err}");
        // Trace capture needs per-operation events, which lanes
        // cannot record; both `trials --trace-out` and `record`
        // reject the combination up front.
        let err = run_str(&[
            "record",
            "--mechanism",
            "unsync",
            "--bits",
            "1",
            "--len",
            "64",
            "--trials",
            "3",
            "--kernel",
            "bitsliced",
            "--trace-out",
            "/tmp/never-written.jsonl",
        ])
        .unwrap_err();
        assert!(err.contains("--kernel scalar"), "{err}");
        // Text output gains a kernel line only off the default.
        let base = [
            "trials",
            "--mechanism",
            "unsync",
            "--bits",
            "1",
            "--len",
            "64",
            "--trials",
            "3",
        ];
        let scalar = run_str(&base).unwrap();
        assert!(!scalar.contains("kernel          :"), "{scalar}");
        let mut args = base.to_vec();
        args.extend(["--kernel", "bitsliced"]);
        let bitsliced = run_str(&args).unwrap();
        assert!(
            bitsliced.contains("kernel          : bitsliced"),
            "{bitsliced}"
        );
    }

    #[test]
    fn trials_all_mechanisms_render() {
        for mech in [
            "unsync",
            "counter",
            "stop-wait",
            "slotted",
            "adaptive",
            "noisy-counter",
            "wide",
        ] {
            let out = run_str(&[
                "trials",
                "--mechanism",
                mech,
                "--bits",
                "1",
                "--len",
                "64",
                "--trials",
                "3",
            ])
            .unwrap();
            assert!(out.contains("rate bits/op"), "{mech}: {out}");
        }
    }

    #[test]
    fn trials_flag_errors() {
        assert!(run_str(&["trials", "--bits", "2"])
            .unwrap_err()
            .contains("--mechanism"));
        assert!(
            run_str(&["trials", "--mechanism", "telepathy", "--bits", "2"])
                .unwrap_err()
                .contains("unknown mechanism")
        );
        // Invalid sender probability propagates the engine error.
        assert!(run_str(&[
            "trials",
            "--mechanism",
            "counter",
            "--bits",
            "2",
            "--q",
            "1.5"
        ])
        .is_err());
        // Zero trials is rejected by campaign validation.
        assert!(run_str(&[
            "trials",
            "--mechanism",
            "counter",
            "--bits",
            "2",
            "--trials",
            "0"
        ])
        .is_err());
    }

    #[test]
    fn sweep_threads_flag_accepted() {
        let serial = run_str(&["sweep", "--bits", "2", "--points", "4", "--threads", "1"]).unwrap();
        let parallel =
            run_str(&["sweep", "--bits", "2", "--points", "4", "--threads", "3"]).unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn sweep_json_deterministic_across_threads_sans_timing() {
        let json_with_threads = |t: &str| {
            run_str(&[
                "sweep",
                "--bits",
                "2",
                "--points",
                "4",
                "--threads",
                t,
                "--format",
                "json",
            ])
            .unwrap()
        };
        let mut one = parse_json(&json_with_threads("1"));
        let mut four = parse_json(&json_with_threads("4"));
        strip_execution(&mut one);
        strip_execution(&mut four);
        assert_eq!(one, four);
        assert!(one["sweep"]["skipped"].as_u64().unwrap() > 0);
    }

    /// A collision-safe scratch path for trace-file tests.
    fn temp_trace(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("nsc-cli-test-{tag}-{}.jsonl", std::process::id()))
    }

    #[test]
    fn record_writes_a_readable_trace() {
        let path = temp_trace("record");
        let path_str = path.to_str().unwrap();
        let out = run_str(&[
            "record",
            "--mechanism",
            "unsync",
            "--bits",
            "2",
            "--len",
            "300",
            "--trials",
            "6",
            "--seed",
            "3",
            "--trace-out",
            path_str,
        ])
        .unwrap();
        assert!(out.contains("trace           : "), "{out}");
        assert!(out.contains("nsc-trace/v1"), "{out}");

        // The file round-trips through the estimator.
        let est = run_str(&["estimate", "--trace", path_str]).unwrap();
        assert!(est.contains("P_d (MLE)"), "{est}");
        assert!(
            est.contains("Theorem 5") || est.contains("Theorem 5's domain"),
            "{est}"
        );
        assert!(est.contains("stationarity"), "{est}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn record_requires_trace_out_but_trials_does_not() {
        let base = [
            "--mechanism",
            "counter",
            "--bits",
            "1",
            "--len",
            "64",
            "--trials",
            "3",
        ];
        let mut record_args = vec!["record"];
        record_args.extend(base);
        assert!(run_str(&record_args).unwrap_err().contains("--trace-out"));
        let mut trials_args = vec!["trials"];
        trials_args.extend(base);
        assert!(run_str(&trials_args).is_ok());
    }

    #[test]
    fn recorded_trace_and_estimate_are_thread_invariant() {
        let record_with = |t: &str, tag: &str| {
            let path = temp_trace(tag);
            let out = run_str(&[
                "record",
                "--mechanism",
                "unsync",
                "--bits",
                "1",
                "--len",
                "200",
                "--trials",
                "5",
                "--seed",
                "9",
                "--threads",
                t,
                "--trace-out",
                path.to_str().unwrap(),
            ])
            .unwrap();
            let bytes = std::fs::read(&path).unwrap();
            let _ = std::fs::remove_file(&path);
            (out, bytes)
        };
        let (_, serial) = record_with("1", "thr1");
        let (_, parallel) = record_with("4", "thr4");
        // The trace file is byte-identical at any thread count.
        assert_eq!(serial, parallel);

        // And the estimate JSON, modulo manifest.execution.
        let path = temp_trace("est");
        std::fs::write(&path, &serial).unwrap();
        let est_with = |t: &str| {
            parse_json(
                &run_str(&[
                    "estimate",
                    "--trace",
                    path.to_str().unwrap(),
                    "--threads",
                    t,
                    "--format",
                    "json",
                ])
                .unwrap(),
            )
        };
        let mut one = est_with("1");
        let mut four = est_with("4");
        let _ = std::fs::remove_file(&path);
        strip_execution(&mut one);
        strip_execution(&mut four);
        assert_eq!(
            serde_json::to_string_pretty(&one).unwrap(),
            serde_json::to_string_pretty(&four).unwrap()
        );
        // The estimate embeds the recording's manifest from the header.
        assert_eq!(one["trace"]["schema"], "nsc-trace/v1");
        assert_eq!(one["trace"]["manifest"]["master_seed"], 9);
        assert!(one["results"]["p_d"]["mle"].is_number());
        assert!(one["results"]["bounds"]["upper_bound"]["estimate"].is_number());
    }

    #[test]
    fn estimate_recovers_campaign_parameters() {
        // The acceptance criterion: record a campaign, estimate from
        // its trace, and the campaign's own (P_d, P_i) means fall
        // inside the estimate's 95% intervals.
        let path = temp_trace("recover");
        let path_str = path.to_str().unwrap();
        let base = [
            "--mechanism",
            "unsync",
            "--bits",
            "2",
            "--len",
            "500",
            "--trials",
            "8",
            "--seed",
            "42",
        ];
        let mut record_args = vec!["record"];
        record_args.extend(base);
        record_args.extend(["--trace-out", path_str, "--format", "json"]);
        let recorded = parse_json(&run_str(&record_args).unwrap());
        let campaign_p_d = recorded["summary"]["p_d"]["mean"].as_f64().unwrap();
        let campaign_p_i = recorded["summary"]["p_i"]["mean"].as_f64().unwrap();

        let est =
            parse_json(&run_str(&["estimate", "--trace", path_str, "--format", "json"]).unwrap());
        let _ = std::fs::remove_file(&path);
        let wilson = |v: &Value| {
            (
                v["wilson"]["lower"].as_f64().unwrap(),
                v["wilson"]["upper"].as_f64().unwrap(),
            )
        };
        let (lo, hi) = wilson(&est["results"]["p_d"]);
        assert!(
            lo <= campaign_p_d && campaign_p_d <= hi,
            "campaign P_d {campaign_p_d} outside [{lo}, {hi}]"
        );
        let (lo, hi) = wilson(&est["results"]["p_i"]);
        assert!(
            lo <= campaign_p_i && campaign_p_i <= hi,
            "campaign P_i {campaign_p_i} outside [{lo}, {hi}]"
        );
    }

    #[test]
    fn estimate_reports_positions_for_corrupt_traces() {
        // Truncated JSON on line 3.
        let path = temp_trace("corrupt");
        std::fs::write(
            &path,
            "{\"schema\":\"nsc-trace/v1\",\"alphabet_bits\":1}\n\
             {\"t\":0,\"ev\":\"send\",\"sym\":1}\n\
             {\"t\":1,\"ev\":\"re",
        )
        .unwrap();
        let err = run_str(&["estimate", "--trace", path.to_str().unwrap()]).unwrap_err();
        assert!(err.contains("line 3"), "{err}");

        // Unsupported schema version fails on line 1.
        std::fs::write(&path, "{\"schema\":\"nsc-trace/v9\",\"alphabet_bits\":1}\n").unwrap();
        let err = run_str(&["estimate", "--trace", path.to_str().unwrap()]).unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        assert!(err.contains("nsc-trace/v9"), "{err}");
        let _ = std::fs::remove_file(&path);

        // Missing files and flag typos are also hard errors.
        assert!(run_str(&["estimate", "--trace", "/nonexistent/x.jsonl"]).is_err());
        assert!(run_str(&["estimate"]).unwrap_err().contains("--trace"));
        assert!(run_str(&["estimate", "--trace", "x", "--window", "4"])
            .unwrap_err()
            .contains("did you mean --windows"));
    }

    #[test]
    fn bench_json_reports_kernels_and_fingerprint() {
        let out = run_str(&[
            "bench",
            "--suite",
            "engine",
            "--profile",
            "quick",
            "--reps",
            "1",
            "--format",
            "json",
        ])
        .unwrap();
        let doc = parse_json(&out);
        assert_eq!(doc["command"], "bench");
        assert_eq!(doc["params"]["bench_schema"], "nsc-bench/v1");
        assert_eq!(doc["params"]["profile"], "quick");
        let suites = doc["suites"].as_array().unwrap();
        assert_eq!(suites.len(), 1);
        assert_eq!(suites[0]["suite"], "engine");
        let results = suites[0]["results"].as_array().unwrap();
        for name in [
            "campaign_counter_scalar",
            "campaign_counter_bitsliced",
            "trial_rng",
            "std_rng",
        ] {
            let r = results
                .iter()
                .find(|r| r["name"] == name)
                .unwrap_or_else(|| panic!("{name} missing"));
            assert!(r["median_ns_per_op"].as_f64().unwrap() > 0.0, "{name}");
        }
        assert!(doc["fingerprint"]["cores"].as_u64().unwrap() >= 1);
        assert!(doc["fingerprint"]["arch"].is_string());

        // --kernel scalar prunes the bitsliced rows.
        let out = run_str(&[
            "bench",
            "--suite",
            "engine",
            "--profile",
            "quick",
            "--reps",
            "1",
            "--kernel",
            "scalar",
            "--format",
            "json",
        ])
        .unwrap();
        let doc = parse_json(&out);
        let results = doc["suites"][0]["results"].as_array().unwrap();
        assert!(results
            .iter()
            .any(|r| r["name"] == "campaign_unsync_scalar"));
        assert!(!results
            .iter()
            .any(|r| r["name"].as_str().unwrap().contains("bitsliced")));
    }

    #[test]
    fn bench_text_and_flag_errors() {
        let out = run_str(&[
            "bench",
            "--suite",
            "trace",
            "--profile",
            "quick",
            "--reps",
            "1",
        ])
        .unwrap();
        assert!(out.contains("suite trace"), "{out}");
        assert!(out.contains("trace_write_manual"), "{out}");
        assert!(out.contains("machine-specific"), "{out}");
        assert!(run_str(&["bench", "--suite", "nope"])
            .unwrap_err()
            .contains("--suite"));
        assert!(run_str(&["bench", "--profile", "slow"])
            .unwrap_err()
            .contains("--profile"));
        assert!(run_str(&["bench", "--reps", "0"])
            .unwrap_err()
            .contains("--reps"));
        assert!(run_str(&["bench", "--suit", "engine"])
            .unwrap_err()
            .contains("did you mean --suite"));
        // Kernel values are validated before any suite runs.
        let err = run_str(&["bench", "--kernel", "bitslice"]).unwrap_err();
        assert!(err.contains("flag --kernel"), "{err}");
        assert!(err.contains("did you mean `bitsliced`"), "{err}");
        // Suite typos get a hint too.
        let err = run_str(&["bench", "--suite", "atlsa"]).unwrap_err();
        assert!(err.contains("did you mean `atlas`"), "{err}");
    }

    #[test]
    fn bench_atlas_suite_reports_cache_rows() {
        let out = run_str(&[
            "bench",
            "--suite",
            "atlas",
            "--profile",
            "quick",
            "--reps",
            "1",
            "--format",
            "json",
        ])
        .unwrap();
        let doc = parse_json(&out);
        let suites = doc["suites"].as_array().unwrap();
        assert_eq!(suites.len(), 1);
        assert_eq!(suites[0]["suite"], "atlas");
        let names: Vec<&str> = suites[0]["results"]
            .as_array()
            .unwrap()
            .iter()
            .map(|r| r["name"].as_str().unwrap())
            .collect();
        assert_eq!(names, ["atlas_cold", "atlas_cached"]);
        for r in suites[0]["results"].as_array().unwrap() {
            assert_eq!(r["unit"], "cell");
            assert!(r["median_ns_per_op"].as_f64().unwrap() > 0.0);
        }
    }

    #[test]
    fn coded_campaign_text_happy_path() {
        let out = run_str(&[
            "coded",
            "--codec",
            "watermark",
            "--data-bits",
            "24",
            "--p-d",
            "0.05",
            "--trials",
            "3",
            "--seed",
            "7",
        ])
        .unwrap();
        assert!(out.contains("codec           : watermark+conv"), "{out}");
        assert!(out.contains("nominal rate"), "{out}");
        assert!(out.contains("decode failures"), "{out}");
        assert!(out.contains("decoder         : scratch"), "{out}");
    }

    #[test]
    fn coded_json_is_thread_and_backend_invariant() {
        // The decoder-equivalence contract the CI matrix enforces:
        // after stripping manifest.execution, the JSON document is
        // byte-identical across thread counts AND decoder backends.
        let base = |extra: &[&str]| {
            let mut args = vec![
                "coded",
                "--codec",
                "marker",
                "--data-bits",
                "24",
                "--p-d",
                "0.04",
                "--trials",
                "4",
                "--seed",
                "11",
                "--format",
                "json",
            ];
            args.extend_from_slice(extra);
            parse_json(&run_str(&args).unwrap())
        };
        let reference = base(&["--threads", "1"]);
        assert_eq!(
            reference["manifest"]["execution"]["decoder"], "scratch",
            "backend must be recorded in the observational section"
        );
        let variants = [
            base(&["--threads", "4"]),
            base(&["--threads", "1", "--decoder", "allocating"]),
            base(&["--threads", "4", "--decoder", "allocating"]),
        ];
        let mut expect = reference.clone();
        strip_execution(&mut expect);
        for mut doc in variants {
            strip_execution(&mut doc);
            assert_eq!(doc, expect);
        }
    }

    #[test]
    fn coded_flag_validation() {
        // Satellite contract: degenerate frames and malformed
        // probabilities die at the flag boundary in the standard
        // diagnostic format.
        let err = run_str(&["coded", "--codec", "watermark", "--p-d", "nan"]).unwrap_err();
        assert!(err.contains("flag --p-d") && err.contains("finite"), "{err}");
        let err = run_str(&[
            "coded", "--codec", "watermark", "--p-d", "0.05", "--p-s", "inf",
        ])
        .unwrap_err();
        assert!(err.contains("flag --p-s") && err.contains("finite"), "{err}");
        let err = run_str(&[
            "coded", "--codec", "watermark", "--p-d", "0.05", "--p-s", "1.5",
        ])
        .unwrap_err();
        assert!(err.contains("flag --p-s") && err.contains("[0, 1]"), "{err}");
        let err = run_str(&[
            "coded",
            "--codec",
            "watermark",
            "--p-d",
            "0.05",
            "--data-bits",
            "0",
        ])
        .unwrap_err();
        assert!(err.contains("flag --data-bits"), "{err}");
        let err = run_str(&["coded", "--codec", "watermrak", "--p-d", "0.05"]).unwrap_err();
        assert!(err.contains("did you mean `watermark`"), "{err}");
        let err = run_str(&[
            "coded",
            "--codec",
            "marker",
            "--p-d",
            "0.05",
            "--block-len",
            "4",
        ])
        .unwrap_err();
        assert!(err.contains("--block-len does not apply"), "{err}");
        let err = run_str(&[
            "coded", "--codec", "watermark", "--p-d", "0.05", "--decoder", "banded",
        ])
        .unwrap_err();
        assert!(err.contains("flag --decoder"), "{err}");
        assert!(run_str(&[
            "coded", "--codec", "watermark", "--p-d", "0.05", "--trials", "0"
        ])
        .unwrap_err()
        .contains("--trials"));
    }

    #[test]
    fn stc_telegraph() {
        let out = run_str(&["stc", "--durations", "1,2"]).unwrap();
        assert!(out.contains("0.694242"), "{out}");
        assert!(run_str(&["stc", "--durations", "1,zebra"]).is_err());
        assert!(run_str(&["stc"]).is_err());
    }

    #[test]
    fn non_finite_flag_values_are_rejected() {
        // `"nan".parse::<f64>()` succeeds, so before the fix these
        // poisoned the math and surfaced as JSON `null`s.
        for (args, flag) in [
            (&["bounds", "--bits", "4", "--p-d", "nan"][..], "--p-d"),
            (
                &["bounds", "--bits", "4", "--p-d", "0.1", "--p-i", "inf"],
                "--p-i",
            ),
            (&["convert", "--bits", "4", "--p-i", "-inf"], "--p-i"),
            (
                &[
                    "correct",
                    "--traditional",
                    "NaN",
                    "--deletions",
                    "1",
                    "--attempts",
                    "8",
                ],
                "--traditional",
            ),
            (
                &[
                    "trials",
                    "--mechanism",
                    "counter",
                    "--bits",
                    "2",
                    "--q",
                    "nan",
                ],
                "--q",
            ),
            (
                &[
                    "loadgen",
                    "--trace",
                    "/nonexistent/x.jsonl",
                    "--tcp",
                    "127.0.0.1:1",
                    "--rate",
                    "inf",
                ],
                "--rate",
            ),
        ] {
            let err = run_str(args).unwrap_err();
            assert!(err.contains(flag), "{args:?}: {err}");
            assert!(err.contains("finite"), "{args:?}: {err}");
        }
    }

    #[test]
    fn degenerate_numeric_flags_are_rejected() {
        // Each of these zeros used to reach the library layer (or a
        // divide) instead of failing at the flag boundary. The
        // checks run before any file or socket is touched.
        for (args, flag) in [
            (
                &[
                    "estimate",
                    "--trace",
                    "/nonexistent/x.jsonl",
                    "--windows",
                    "0",
                ][..],
                "--windows",
            ),
            (
                &[
                    "trials",
                    "--mechanism",
                    "counter",
                    "--bits",
                    "2",
                    "--trials",
                    "0",
                ],
                "--trials",
            ),
            (
                &[
                    "trials",
                    "--mechanism",
                    "counter",
                    "--bits",
                    "2",
                    "--len",
                    "0",
                ],
                "--len",
            ),
            (
                &["serve", "--tcp", "127.0.0.1:1", "--shards", "0"],
                "--shards",
            ),
            (
                &["serve", "--tcp", "127.0.0.1:1", "--windows", "0"],
                "--windows",
            ),
            (
                &[
                    "loadgen",
                    "--trace",
                    "/nonexistent/x.jsonl",
                    "--tcp",
                    "127.0.0.1:1",
                    "--connections",
                    "0",
                ],
                "--connections",
            ),
            (
                &[
                    "loadgen",
                    "--trace",
                    "/nonexistent/x.jsonl",
                    "--tcp",
                    "127.0.0.1:1",
                    "--repeat",
                    "0",
                ],
                "--repeat",
            ),
        ] {
            let err = run_str(args).unwrap_err();
            assert!(err.contains(flag), "{args:?}: {err}");
            assert!(err.contains("at least"), "{args:?}: {err}");
        }
    }

    #[test]
    fn serve_and_loadgen_need_an_endpoint() {
        let err = run_str(&["serve"]).unwrap_err();
        assert!(err.contains("endpoint"), "{err}");
        let err = run_str(&["loadgen", "--trace", "x.jsonl"]).unwrap_err();
        assert!(err.contains("endpoint"), "{err}");
    }

    /// A scratch store directory for one atlas CLI test.
    fn atlas_store_dir(tag: &str) -> String {
        let root =
            std::env::temp_dir().join(format!("nsc-cli-atlas-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        root.to_string_lossy().into_owned()
    }

    /// Runs `nsc atlas <mode>` on a small fixed grid plus `extra`
    /// flags, always in `--format json`.
    fn run_atlas(mode: &str, store: &str, extra: &[&str]) -> CliResult {
        let mut args = vec![
            "atlas", mode, "--store", store, "--widths", "1,2", "--p-d", "0:0.5:2", "--p-i",
            "0:0.5:2", "--trials", "4", "--len", "8", "--seed", "3", "--format", "json",
        ];
        args.extend_from_slice(extra);
        run_str(&args)
    }

    #[test]
    fn atlas_fresh_and_resumed_runs_are_byte_identical() {
        let fresh_dir = atlas_store_dir("fresh");
        let mut fresh = parse_json(&run_atlas("run", &fresh_dir, &[]).unwrap());
        assert_eq!(fresh["schema"], JSON_SCHEMA);
        assert_eq!(fresh["atlas"]["schema"], "nsc-atlas/v1");
        assert_eq!(fresh["manifest"]["execution"]["cached_cells"], json!(0));

        // Kill after 2 cells, then resume: the cache serves the 2
        // completed cells and the final document matches byte for
        // byte once the observational section is stripped.
        let resumed_dir = atlas_store_dir("resumed");
        let partial = parse_json(&run_atlas("run", &resumed_dir, &["--max-cells", "2"]).unwrap());
        assert_eq!(partial["manifest"]["execution"]["computed_cells"], json!(2));
        assert!(
            partial["manifest"]["execution"]["pending_cells"]
                .as_u64()
                .unwrap()
                > 0
        );
        let mut resumed = parse_json(&run_atlas("resume", &resumed_dir, &[]).unwrap());
        assert_eq!(resumed["manifest"]["execution"]["cached_cells"], json!(2));

        strip_execution(&mut fresh);
        strip_execution(&mut resumed);
        assert_eq!(
            serde_json::to_string(&fresh).unwrap(),
            serde_json::to_string(&resumed).unwrap()
        );
        let _ = std::fs::remove_dir_all(&fresh_dir);
        let _ = std::fs::remove_dir_all(&resumed_dir);
    }

    #[test]
    fn atlas_reports_are_thread_and_kernel_invariant() {
        let dir_a = atlas_store_dir("scalar");
        let dir_b = atlas_store_dir("bitsliced");
        let mut a = parse_json(&run_atlas("run", &dir_a, &["--threads", "1"]).unwrap());
        let mut b = parse_json(
            &run_atlas("run", &dir_b, &["--threads", "4", "--kernel", "bitsliced"]).unwrap(),
        );
        strip_execution(&mut a);
        strip_execution(&mut b);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
        let _ = std::fs::remove_dir_all(&dir_a);
        let _ = std::fs::remove_dir_all(&dir_b);
    }

    #[test]
    fn atlas_report_mode_never_simulates_and_needs_a_complete_store() {
        let dir = atlas_store_dir("report");
        run_atlas("run", &dir, &["--max-cells", "1"]).unwrap();
        let err = run_atlas("report", &dir, &[]).unwrap_err();
        assert!(err.contains("missing"), "{err}");

        let mut full = parse_json(&run_atlas("resume", &dir, &[]).unwrap());
        let report = parse_json(&run_atlas("report", &dir, &[]).unwrap());
        assert_eq!(report["manifest"]["execution"]["computed_cells"], json!(0));
        assert_eq!(report["manifest"]["execution"]["mode"], json!("report"));
        // A rerun of a complete store is all cache hits…
        let rerun = parse_json(&run_atlas("run", &dir, &[]).unwrap());
        assert_eq!(rerun["manifest"]["execution"]["computed_cells"], json!(0));
        // …and the atlas body is identical across run/resume/report
        // (the mode only shows up in manifest.execution).
        let mut report = report;
        let mut rerun = rerun;
        strip_execution(&mut full);
        strip_execution(&mut report);
        strip_execution(&mut rerun);
        assert_eq!(full["atlas"], report["atlas"]);
        assert_eq!(full["atlas"], rerun["atlas"]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn atlas_flag_validation() {
        let dir = atlas_store_dir("flags");
        // Mode is mandatory and typo'd modes get a hint.
        assert!(run_str(&["atlas"])
            .unwrap_err()
            .contains("run|resume|report"));
        let err = run_str(&["atlas", "reprot", "--store", &dir]).unwrap_err();
        assert!(err.contains("did you mean `report`"), "{err}");
        // report never simulates, so a cell cap is a contradiction.
        let err = run_atlas("report", &dir, &["--max-cells", "1"]).unwrap_err();
        assert!(err.contains("--max-cells"), "{err}");
        // The shard count is fixed at store creation.
        let err = run_atlas("resume", &dir, &["--shards", "2"]).unwrap_err();
        assert!(err.contains("--shards"), "{err}");
        // resume/report refuse to invent a store.
        let err = run_atlas("resume", &dir, &[]).unwrap_err();
        assert!(err.contains("meta.json"), "{err}");
        // Grid syntax and mechanism gating.
        let err = run_str(&["atlas", "run", "--store", &dir, "--p-d", "0:0.5"]).unwrap_err();
        assert!(err.contains("start:end:points"), "{err}");
        let err = run_str(&["atlas", "run", "--store", &dir, "--mechanism", "wide"]).unwrap_err();
        assert!(err.contains("kernel-equivalent"), "{err}");
        let err = run_str(&[
            "atlas",
            "run",
            "--store",
            &dir,
            "--mechanism",
            "counter",
            "--slot-len",
            "4",
        ])
        .unwrap_err();
        assert!(err.contains("--slot-len does not apply"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn atlas_text_rendering_summarizes_verdicts() {
        let dir = atlas_store_dir("text");
        // N = 1 with insertions is the loose regime for Theorem 5.
        let out = run_str(&[
            "atlas", "run", "--store", &dir, "--widths", "1", "--p-d", "0", "--p-i", "0:0.45:2",
            "--trials", "4", "--len", "8",
        ])
        .unwrap();
        assert!(out.contains("store           : "), "{out}");
        assert!(out.contains("cells           : 2 completed"), "{out}");
        assert!(out.contains("loose at 1 cell(s)"), "{out}");
        assert!(out.contains("[loose]"), "{out}");
        assert!(out.contains("theorem5"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn serve_status_flag_queries_a_running_server() {
        let server = nsc_serve::Server::bind(
            &[Endpoint::Tcp("127.0.0.1:0".to_owned())],
            ServeConfig::default(),
        )
        .unwrap();
        let addr = server.tcp_addr().unwrap().to_string();
        let out = run_str(&["serve", "--status", "--tcp", &addr, "--format", "json"]).unwrap();
        let doc = parse_json(&out);
        assert_eq!(doc["schema"], "nsc-serve/v1");
        assert_eq!(doc["totals"]["streams"], json!(0));
        // The text rendering works on the same document.
        let text = run_str(&["serve", "--status", "--tcp", &addr]).unwrap();
        assert!(text.contains("streams         : 0"), "{text}");
        server.shutdown();
    }
}
