//! The `nsc` command-line covert-channel auditor.
//!
//! Thin, dependency-free argument parsing over the workspace's
//! libraries. Subcommands:
//!
//! * `bounds` — Theorem 4/5 capacity bounds at given parameters.
//! * `correct` — the §4.3 correction from measured deletion counts.
//! * `convert` — the Theorem 5 converted-channel capacity `C_conv`.
//! * `sweep` — the achievable-capacity surface over `(P_d, P_i)`.
//! * `trials` — a Monte-Carlo campaign of one §3 synchronization
//!   mechanism under the deterministic parallel trial engine.
//! * `stc` — Shannon/Moskowitz noiseless timing capacity from symbol
//!   durations.
//!
//! `sweep` and `trials` accept `--threads` (0 = one worker per core)
//! and `trials` accepts `--seed`; by the engine's determinism
//! contract the thread count only changes wall-clock time, never a
//! digit of output.
//!
//! The library exposes [`run`] so tests can drive the CLI without a
//! process boundary; `main.rs` is a two-liner.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

use nsc_core::bounds::{capacity_bounds, converted_channel_capacity};
use nsc_core::degradation::SeverityPolicy;
use nsc_core::engine::{run_campaign, EngineConfig, Mechanism, StatSummary, TrialPlan};
use nsc_core::estimator::assess_from_counts;
use nsc_core::sim::noisy_feedback::FeedbackQuality;
use nsc_core::sweep::{sweep_bounds_with, Grid};
use nsc_info::timing::noiseless_timing_capacity;
use nsc_info::BitsPerTick;
use std::collections::HashMap;
use std::fmt::Write as _;

/// CLI outcome: rendered output or a usage error (message, exit
/// code 2).
pub type CliResult = Result<String, String>;

/// Runs the CLI on pre-split arguments (without the program name).
///
/// # Errors
///
/// Returns a usage/diagnostic message when the arguments are invalid;
/// the caller prints it to stderr and exits non-zero.
pub fn run(args: &[String]) -> CliResult {
    let Some((cmd, rest)) = args.split_first() else {
        return Err(usage());
    };
    match cmd.as_str() {
        "bounds" => cmd_bounds(rest),
        "correct" => cmd_correct(rest),
        "convert" => cmd_convert(rest),
        "sweep" => cmd_sweep(rest),
        "trials" => cmd_trials(rest),
        "stc" => cmd_stc(rest),
        "help" | "--help" | "-h" => Ok(usage()),
        other => Err(format!("unknown subcommand `{other}`\n\n{}", usage())),
    }
}

/// The usage text.
pub fn usage() -> String {
    "nsc — non-synchronous covert-channel capacity auditor\n\
     \n\
     USAGE:\n\
     \x20 nsc bounds  --bits N --p-d X [--p-i Y]\n\
     \x20 nsc correct --traditional C --deletions D --attempts A\n\
     \x20 nsc convert --bits N --p-i Y\n\
     \x20 nsc sweep   --bits N [--points K] [--threads T]\n\
     \x20 nsc trials  --mechanism M --bits N [--q X] [--len L] [--trials K]\n\
     \x20             [--seed S] [--threads T] [--slot-len L] [--p-loss X] [--delay D]\n\
     \x20 nsc stc     --durations T1,T2,...\n\
     \n\
     All capacities follow Wang & Lee (ICDCS 2005): `bounds` gives the\n\
     Theorem 5 achievable rate and the Theorem 4 upper bound in bits\n\
     per symbol slot; `correct` applies the practical recipe\n\
     C_real = C_traditional * (1 - P_d) with a 95% interval.\n\
     \n\
     `trials` mechanisms: unsync | counter | stop-wait | slotted |\n\
     adaptive | noisy-counter | wide. Campaigns run on the\n\
     deterministic parallel engine: --threads (0 = all cores) changes\n\
     wall-clock time only; output is bit-identical for a given --seed.\n"
        .to_owned()
}

/// Parses `--key value` pairs.
fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut map = HashMap::new();
    let mut it = args.iter();
    while let Some(key) = it.next() {
        let Some(name) = key.strip_prefix("--") else {
            return Err(format!("expected a --flag, got `{key}`"));
        };
        let Some(value) = it.next() else {
            return Err(format!("flag --{name} needs a value"));
        };
        map.insert(name.to_owned(), value.clone());
    }
    Ok(map)
}

fn need<T: std::str::FromStr>(flags: &HashMap<String, String>, name: &str) -> Result<T, String> {
    let raw = flags
        .get(name)
        .ok_or_else(|| format!("missing required flag --{name}"))?;
    raw.parse()
        .map_err(|_| format!("flag --{name}: cannot parse `{raw}`"))
}

fn optional<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    name: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(raw) => raw
            .parse()
            .map_err(|_| format!("flag --{name}: cannot parse `{raw}`")),
    }
}

fn cmd_bounds(args: &[String]) -> CliResult {
    let flags = parse_flags(args)?;
    let bits: u32 = need(&flags, "bits")?;
    let p_d: f64 = need(&flags, "p-d")?;
    let p_i: f64 = optional(&flags, "p-i", 0.0)?;
    let b = capacity_bounds(bits, p_d, p_i).map_err(|e| e.to_string())?;
    let mut out = String::new();
    let _ = writeln!(out, "symbol width    : {bits} bits");
    let _ = writeln!(out, "P_d / P_i       : {p_d} / {p_i}");
    let _ = writeln!(
        out,
        "achievable      : {:.6} bits/slot  (Theorem 5)",
        b.lower.value()
    );
    let _ = writeln!(
        out,
        "upper bound     : {:.6} bits/slot  (Theorem 4, N(1-P_d))",
        b.upper.value()
    );
    let _ = writeln!(out, "tightness       : {:.1}%", 100.0 * b.tightness());
    Ok(out)
}

fn cmd_correct(args: &[String]) -> CliResult {
    let flags = parse_flags(args)?;
    let traditional: f64 = need(&flags, "traditional")?;
    let deletions: u64 = need(&flags, "deletions")?;
    let attempts: u64 = need(&flags, "attempts")?;
    let a = assess_from_counts(
        BitsPerTick(traditional),
        deletions,
        attempts,
        &SeverityPolicy::default(),
    )
    .map_err(|e| e.to_string())?;
    let mut out = String::new();
    let _ = writeln!(out, "traditional     : {traditional} bits/tick");
    let _ = writeln!(
        out,
        "measured P_d    : {:.6}  (95% CI [{:.6}, {:.6}], n = {})",
        a.report.p_d.estimate, a.report.p_d.lower, a.report.p_d.upper, attempts
    );
    let _ = writeln!(
        out,
        "corrected       : {:.6} bits/tick  (interval [{:.6}, {:.6}])",
        a.report.corrected.value(),
        a.report.corrected_interval.0.value(),
        a.report.corrected_interval.1.value()
    );
    let _ = writeln!(out, "severity        : {:?}", a.severity);
    Ok(out)
}

fn cmd_convert(args: &[String]) -> CliResult {
    let flags = parse_flags(args)?;
    let bits: u32 = need(&flags, "bits")?;
    let p_i: f64 = need(&flags, "p-i")?;
    let c = converted_channel_capacity(bits, p_i).map_err(|e| e.to_string())?;
    Ok(format!(
        "C_conv({bits} bits, P_i = {p_i}) = {:.6} bits/symbol  (eqs. 2-4; Figure 5)\n",
        c.value()
    ))
}

fn cmd_sweep(args: &[String]) -> CliResult {
    let flags = parse_flags(args)?;
    let bits: u32 = need(&flags, "bits")?;
    let points: usize = optional(&flags, "points", 10)?;
    if points < 2 {
        return Err("--points must be at least 2".to_owned());
    }
    let threads: usize = optional(&flags, "threads", 0)?;
    let grid = Grid::new(0.0, 0.9, points).map_err(|e| e.to_string())?;
    let cfg = EngineConfig::seeded(0).with_threads(threads);
    let sweep = sweep_bounds_with(&cfg, &grid, &grid, &[bits]).map_err(|e| e.to_string())?;
    let mut out = String::new();
    let _ = write!(out, "{:>7}", "Pd\\Pi");
    for p_i in grid.values() {
        let _ = write!(out, "{p_i:>8.2}");
    }
    let _ = writeln!(out);
    for p_d in grid.values() {
        let _ = write!(out, "{p_d:>7.2}");
        for p_i in grid.values() {
            let cell = sweep
                .points
                .iter()
                .find(|p| (p.p_d - p_d).abs() < 1e-9 && (p.p_i - p_i).abs() < 1e-9);
            match cell {
                Some(p) => {
                    let _ = write!(out, "{:>8.3}", p.bounds.lower.value());
                }
                None => {
                    let _ = write!(out, "{:>8}", "-");
                }
            }
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(
        out,
        "\nachievable bits/slot (Theorem 5); '-' = outside the parameter simplex"
    );
    Ok(out)
}

fn cmd_trials(args: &[String]) -> CliResult {
    let flags = parse_flags(args)?;
    let mech_name: String = need(&flags, "mechanism")?;
    let bits: u32 = need(&flags, "bits")?;
    let q: f64 = optional(&flags, "q", 0.5)?;
    let len: usize = optional(&flags, "len", 2_000)?;
    let trials: usize = optional(&flags, "trials", 32)?;
    let seed: u64 = optional(&flags, "seed", 0)?;
    let threads: usize = optional(&flags, "threads", 0)?;
    let mechanism = match mech_name.as_str() {
        "unsync" => Mechanism::Unsynchronized,
        "counter" => Mechanism::Counter,
        "stop-wait" => Mechanism::StopWait,
        "slotted" => Mechanism::Slotted {
            slot_len: optional(&flags, "slot-len", 8)?,
        },
        "adaptive" => Mechanism::AdaptiveSlotted,
        "noisy-counter" => Mechanism::NoisyCounter {
            quality: FeedbackQuality {
                p_loss: optional(&flags, "p-loss", 0.0)?,
                delay: optional(&flags, "delay", 0)?,
            },
        },
        "wide" => Mechanism::Wide,
        other => {
            return Err(format!(
                "unknown mechanism `{other}` (expected unsync | counter | stop-wait | \
                 slotted | adaptive | noisy-counter | wide)"
            ))
        }
    };
    let mut plan = TrialPlan::new(mechanism, bits, len, q);
    if let Some(raw) = flags.get("max-ops") {
        plan.max_ops = raw
            .parse()
            .map_err(|_| format!("flag --max-ops: cannot parse `{raw}`"))?;
    }
    let cfg = EngineConfig::seeded(seed).with_threads(threads);
    let summary = run_campaign(&cfg, &plan, trials).map_err(|e| e.to_string())?;
    let stat = |s: &StatSummary| {
        format!(
            "{:.6} ± {:.6}  (95% CI [{:.6}, {:.6}])",
            s.mean,
            s.ci95_hi - s.mean,
            s.ci95_lo,
            s.ci95_hi
        )
    };
    let mut out = String::new();
    let _ = writeln!(out, "mechanism       : {}", summary.mechanism);
    let _ = writeln!(out, "bits / q / len  : {bits} / {q} / {len}");
    let _ = writeln!(out, "trials / seed   : {trials} / {seed}");
    let _ = writeln!(out, "rate bits/op    : {}", stat(&summary.rate));
    let _ = writeln!(out, "P_d^            : {}", stat(&summary.p_d));
    let _ = writeln!(out, "P_i^            : {}", stat(&summary.p_i));
    let _ = writeln!(out, "error rate      : {}", stat(&summary.error_rate));
    let _ = writeln!(
        out,
        "determinism     : per-trial SplitMix64 seeds from master seed {seed}; \
         output is identical at any --threads"
    );
    Ok(out)
}

fn cmd_stc(args: &[String]) -> CliResult {
    let flags = parse_flags(args)?;
    let raw = flags
        .get("durations")
        .ok_or_else(|| "missing required flag --durations".to_owned())?;
    let durations: Vec<f64> = raw
        .split(',')
        .map(|s| {
            s.trim()
                .parse::<f64>()
                .map_err(|_| format!("cannot parse duration `{s}`"))
        })
        .collect::<Result<_, _>>()?;
    let c = noiseless_timing_capacity(&durations).map_err(|e| e.to_string())?;
    Ok(format!(
        "noiseless timing capacity for durations {durations:?}: {c:.6} bits per time unit\n\
         (Shannon's characteristic root; Moskowitz's Simple Timing Channel)\n"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_str(args: &[&str]) -> CliResult {
        run(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn help_and_unknown() {
        assert!(run_str(&["help"]).unwrap().contains("USAGE"));
        assert!(run_str(&[]).is_err());
        assert!(run_str(&["frobnicate"]).unwrap_err().contains("unknown"));
    }

    #[test]
    fn bounds_happy_path() {
        let out = run_str(&["bounds", "--bits", "8", "--p-d", "0.25"]).unwrap();
        assert!(out.contains("upper bound     : 6.000000"));
        assert!(out.contains("achievable      : 6.000000"));
    }

    #[test]
    fn bounds_with_insertions() {
        let out = run_str(&["bounds", "--bits", "4", "--p-d", "0.1", "--p-i", "0.1"]).unwrap();
        assert!(out.contains("Theorem 5"));
        assert!(out.contains("tightness"));
    }

    #[test]
    fn bounds_flag_errors() {
        assert!(run_str(&["bounds", "--bits", "8"])
            .unwrap_err()
            .contains("--p-d"));
        assert!(run_str(&["bounds", "--bits", "x", "--p-d", "0.1"])
            .unwrap_err()
            .contains("cannot parse"));
        assert!(run_str(&["bounds", "bits"]).unwrap_err().contains("--flag"));
        assert!(run_str(&["bounds", "--bits"])
            .unwrap_err()
            .contains("needs a value"));
        // Out-of-range probability propagates the library error.
        assert!(run_str(&["bounds", "--bits", "4", "--p-d", "1.5"]).is_err());
    }

    #[test]
    fn correct_matches_recipe() {
        let out = run_str(&[
            "correct",
            "--traditional",
            "100",
            "--deletions",
            "300",
            "--attempts",
            "1000",
        ])
        .unwrap();
        assert!(out.contains("corrected       : 70.0000"), "{out}");
        assert!(out.contains("severity"));
    }

    #[test]
    fn convert_matches_formula() {
        let out = run_str(&["convert", "--bits", "4", "--p-i", "0.0"]).unwrap();
        assert!(out.contains("= 4.000000"));
    }

    #[test]
    fn sweep_renders_grid() {
        let out = run_str(&["sweep", "--bits", "2", "--points", "4"]).unwrap();
        assert!(out.contains("Pd\\Pi"));
        assert!(out.contains("-"));
        assert!(run_str(&["sweep", "--bits", "2", "--points", "1"]).is_err());
    }

    #[test]
    fn trials_output_identical_across_thread_counts() {
        // The CLI-level determinism contract: only wall-clock time may
        // depend on --threads.
        let base = [
            "trials",
            "--mechanism",
            "counter",
            "--bits",
            "2",
            "--len",
            "200",
            "--trials",
            "12",
            "--seed",
            "7",
        ];
        let with_threads = |t: &str| {
            let mut args: Vec<&str> = base.to_vec();
            args.extend(["--threads", t]);
            run_str(&args).unwrap()
        };
        let one = with_threads("1");
        assert_eq!(one, with_threads("4"));
        assert_eq!(one, with_threads("0"));
        assert!(one.contains("mechanism       : counter"), "{one}");
        assert!(one.contains("95% CI"), "{one}");
    }

    #[test]
    fn trials_all_mechanisms_render() {
        for mech in [
            "unsync",
            "counter",
            "stop-wait",
            "slotted",
            "adaptive",
            "noisy-counter",
            "wide",
        ] {
            let out = run_str(&[
                "trials",
                "--mechanism",
                mech,
                "--bits",
                "1",
                "--len",
                "64",
                "--trials",
                "3",
            ])
            .unwrap();
            assert!(out.contains("rate bits/op"), "{mech}: {out}");
        }
    }

    #[test]
    fn trials_flag_errors() {
        assert!(run_str(&["trials", "--bits", "2"])
            .unwrap_err()
            .contains("--mechanism"));
        assert!(
            run_str(&["trials", "--mechanism", "telepathy", "--bits", "2"])
                .unwrap_err()
                .contains("unknown mechanism")
        );
        // Invalid sender probability propagates the engine error.
        assert!(run_str(&[
            "trials",
            "--mechanism",
            "counter",
            "--bits",
            "2",
            "--q",
            "1.5"
        ])
        .is_err());
        // Zero trials is rejected by campaign validation.
        assert!(run_str(&[
            "trials",
            "--mechanism",
            "counter",
            "--bits",
            "2",
            "--trials",
            "0"
        ])
        .is_err());
    }

    #[test]
    fn sweep_threads_flag_accepted() {
        let serial = run_str(&["sweep", "--bits", "2", "--points", "4", "--threads", "1"]).unwrap();
        let parallel =
            run_str(&["sweep", "--bits", "2", "--points", "4", "--threads", "3"]).unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn stc_telegraph() {
        let out = run_str(&["stc", "--durations", "1,2"]).unwrap();
        assert!(out.contains("0.694242"), "{out}");
        assert!(run_str(&["stc", "--durations", "1,zebra"]).is_err());
        assert!(run_str(&["stc"]).is_err());
    }
}
