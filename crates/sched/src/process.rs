//! Processes on the simulated uniprocessor.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Process identifier: an index into the system's process table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Pid(pub usize);

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid{}", self.0)
    }
}

/// What a process does in the covert-channel experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Role {
    /// The high-side process writing the shared variable.
    CovertSender,
    /// The low-side process sampling the shared variable.
    CovertReceiver,
    /// Innocent background load.
    Background,
}

/// A simulated process. Processes are CPU-greedy but stochastically
/// blocked: at each quantum a process is *ready* with probability
/// `ready_prob` (modelling I/O waits and sleeps), which is what makes
/// fixed-priority scheduling non-degenerate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Process {
    /// Role in the experiment.
    pub role: Role,
    /// Scheduling priority: larger wins under fixed-priority.
    pub priority: u32,
    /// Lottery tickets / stride weight (proportional-share policies).
    pub weight: u32,
    /// Probability of being ready at any given quantum.
    pub ready_prob: f64,
}

impl Process {
    /// A CPU-greedy process that is always ready.
    pub fn greedy(role: Role) -> Self {
        Process {
            role,
            priority: 1,
            weight: 1,
            ready_prob: 1.0,
        }
    }

    /// Sets the priority (builder style).
    pub fn with_priority(mut self, priority: u32) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the proportional-share weight (builder style).
    pub fn with_weight(mut self, weight: u32) -> Self {
        self.weight = weight;
        self
    }

    /// Sets the readiness probability (builder style).
    ///
    /// # Panics
    ///
    /// Panics when `p` is not a probability; workload validation in
    /// [`crate::system::Uniprocessor::new`] is the non-panicking
    /// boundary.
    pub fn with_ready_prob(mut self, p: f64) -> Self {
        assert!(
            p.is_finite() && (0.0..=1.0).contains(&p),
            "readiness probability must be in [0, 1]"
        );
        self.ready_prob = p;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders() {
        let p = Process::greedy(Role::CovertSender)
            .with_priority(5)
            .with_weight(3)
            .with_ready_prob(0.8);
        assert_eq!(p.role, Role::CovertSender);
        assert_eq!(p.priority, 5);
        assert_eq!(p.weight, 3);
        assert_eq!(p.ready_prob, 0.8);
    }

    #[test]
    #[should_panic(expected = "readiness probability")]
    fn bad_ready_prob_panics() {
        let _ = Process::greedy(Role::Background).with_ready_prob(1.5);
    }

    #[test]
    fn pid_display() {
        assert_eq!(Pid(3).to_string(), "pid3");
    }
}
