//! The simulated uniprocessor.

use crate::error::SchedError;
use crate::policy::Policy;
use crate::process::{Pid, Process, Role};
use crate::trace::{Quantum, Trace};
use rand::Rng;

/// Declarative description of the process mix on the machine.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    processes: Vec<Process>,
}

impl WorkloadSpec {
    /// A bare covert pair: one always-ready sender and one
    /// always-ready receiver, equal priority and weight.
    pub fn covert_pair() -> Self {
        WorkloadSpec {
            processes: vec![
                Process::greedy(Role::CovertSender),
                Process::greedy(Role::CovertReceiver),
            ],
        }
    }

    /// Starts from an explicit process list.
    pub fn from_processes(processes: Vec<Process>) -> Self {
        WorkloadSpec { processes }
    }

    /// Adds `n` background processes with the given readiness
    /// probability (builder style).
    pub fn with_background(mut self, n: usize, ready_prob: f64) -> Self {
        for _ in 0..n {
            self.processes
                .push(Process::greedy(Role::Background).with_ready_prob(ready_prob));
        }
        self
    }

    /// Mutates the sender process (builder style). No-op when the
    /// spec has no sender; validation in [`Uniprocessor::new`]
    /// catches that case.
    pub fn map_sender(mut self, f: impl FnOnce(Process) -> Process) -> Self {
        if let Some(p) = self
            .processes
            .iter_mut()
            .find(|p| p.role == Role::CovertSender)
        {
            *p = f(p.clone());
        }
        self
    }

    /// Mutates the receiver process (builder style).
    pub fn map_receiver(mut self, f: impl FnOnce(Process) -> Process) -> Self {
        if let Some(p) = self
            .processes
            .iter_mut()
            .find(|p| p.role == Role::CovertReceiver)
        {
            *p = f(p.clone());
        }
        self
    }

    /// The process table.
    pub fn processes(&self) -> &[Process] {
        &self.processes
    }
}

/// A uniprocessor running a workload under a scheduling policy.
pub struct Uniprocessor {
    table: Vec<Process>,
    policy: Box<dyn Policy>,
}

impl std::fmt::Debug for Uniprocessor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Uniprocessor")
            .field("processes", &self.table.len())
            .field("policy", &self.policy.name())
            .finish()
    }
}

impl Uniprocessor {
    /// Builds a system from a workload and a policy.
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::BadWorkload`] unless the workload has
    /// exactly one covert sender, exactly one covert receiver, and
    /// every readiness probability is valid.
    pub fn new(spec: WorkloadSpec, policy: Box<dyn Policy>) -> Result<Self, SchedError> {
        let senders = spec
            .processes
            .iter()
            .filter(|p| p.role == Role::CovertSender)
            .count();
        let receivers = spec
            .processes
            .iter()
            .filter(|p| p.role == Role::CovertReceiver)
            .count();
        if senders != 1 || receivers != 1 {
            return Err(SchedError::BadWorkload(format!(
                "need exactly one sender and one receiver, got {senders} and {receivers}"
            )));
        }
        for p in &spec.processes {
            if !p.ready_prob.is_finite() || !(0.0..=1.0).contains(&p.ready_prob) {
                return Err(SchedError::BadWorkload(format!(
                    "readiness probability {} invalid",
                    p.ready_prob
                )));
            }
        }
        Ok(Uniprocessor {
            table: spec.processes,
            policy,
        })
    }

    /// The process table.
    pub fn processes(&self) -> &[Process] {
        &self.table
    }

    /// The policy's name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Runs the machine for `quanta` quanta, producing a trace.
    pub fn run<R: Rng>(&mut self, quanta: usize, rng: &mut R) -> Trace {
        let mut out = Vec::with_capacity(quanta);
        let mut ready_buf = Vec::with_capacity(self.table.len());
        for _ in 0..quanta {
            ready_buf.clear();
            for (i, p) in self.table.iter().enumerate() {
                if p.ready_prob >= 1.0 || rng.gen::<f64>() < p.ready_prob {
                    ready_buf.push(Pid(i));
                }
            }
            if ready_buf.is_empty() {
                out.push(Quantum::Idle);
            } else {
                let pid = self.policy.pick(&self.table, &ready_buf, rng);
                out.push(Quantum::Ran(pid));
            }
        }
        Trace::new(out, self.table.iter().map(|p| p.role).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{FixedPriority, Lottery, RoundRobin, Stride, UniformRandom};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn workload_validation() {
        let no_receiver = WorkloadSpec::from_processes(vec![Process::greedy(Role::CovertSender)]);
        assert!(Uniprocessor::new(no_receiver, Box::new(RoundRobin::new())).is_err());
        let two_senders = WorkloadSpec::from_processes(vec![
            Process::greedy(Role::CovertSender),
            Process::greedy(Role::CovertSender),
            Process::greedy(Role::CovertReceiver),
        ]);
        assert!(Uniprocessor::new(two_senders, Box::new(RoundRobin::new())).is_err());
        assert!(
            Uniprocessor::new(WorkloadSpec::covert_pair(), Box::new(RoundRobin::new())).is_ok()
        );
    }

    #[test]
    fn round_robin_pair_alternates() {
        let mut sys =
            Uniprocessor::new(WorkloadSpec::covert_pair(), Box::new(RoundRobin::new())).unwrap();
        let trace = sys.run(10, &mut StdRng::seed_from_u64(0));
        let roles: Vec<_> = (0..10).map(|i| trace.role_at(i).unwrap()).collect();
        for pair in roles.chunks(2) {
            assert_eq!(pair[0], Role::CovertSender);
            assert_eq!(pair[1], Role::CovertReceiver);
        }
    }

    #[test]
    fn lottery_shares_follow_weights() {
        let spec = WorkloadSpec::covert_pair().map_sender(|p| p.with_weight(3));
        let mut sys = Uniprocessor::new(spec, Box::new(Lottery::new())).unwrap();
        let trace = sys.run(40_000, &mut StdRng::seed_from_u64(1));
        let share = trace.count_role(Role::CovertSender) as f64 / trace.len() as f64;
        assert!((share - 0.75).abs() < 0.01, "share = {share}");
    }

    #[test]
    fn stride_shares_follow_weights() {
        let spec = WorkloadSpec::covert_pair().map_receiver(|p| p.with_weight(2));
        let mut sys = Uniprocessor::new(spec, Box::new(Stride::new())).unwrap();
        let trace = sys.run(9_000, &mut StdRng::seed_from_u64(2));
        let share = trace.count_role(Role::CovertReceiver) as f64 / trace.len() as f64;
        assert!((share - 2.0 / 3.0).abs() < 0.01, "share = {share}");
    }

    #[test]
    fn priority_starves_low_side_when_high_always_ready() {
        let spec = WorkloadSpec::covert_pair().map_sender(|p| p.with_priority(10));
        let mut sys = Uniprocessor::new(spec, Box::new(FixedPriority::new())).unwrap();
        let trace = sys.run(1000, &mut StdRng::seed_from_u64(3));
        assert_eq!(trace.count_role(Role::CovertReceiver), 0);
    }

    #[test]
    fn priority_with_blocking_lets_low_side_run() {
        let spec =
            WorkloadSpec::covert_pair().map_sender(|p| p.with_priority(10).with_ready_prob(0.5));
        let mut sys = Uniprocessor::new(spec, Box::new(FixedPriority::new())).unwrap();
        let trace = sys.run(20_000, &mut StdRng::seed_from_u64(4));
        let rec_share = trace.count_role(Role::CovertReceiver) as f64 / trace.len() as f64;
        assert!((rec_share - 0.5).abs() < 0.02, "share = {rec_share}");
    }

    #[test]
    fn idle_quanta_when_nothing_ready() {
        let spec = WorkloadSpec::from_processes(vec![
            Process::greedy(Role::CovertSender).with_ready_prob(0.1),
            Process::greedy(Role::CovertReceiver).with_ready_prob(0.1),
        ]);
        let mut sys = Uniprocessor::new(spec, Box::new(UniformRandom::new())).unwrap();
        let trace = sys.run(20_000, &mut StdRng::seed_from_u64(5));
        // P(idle) = 0.9 * 0.9 = 0.81.
        assert!((trace.idle_fraction() - 0.81).abs() < 0.02);
    }

    #[test]
    fn background_load_dilutes_covert_pair() {
        let spec = WorkloadSpec::covert_pair().with_background(6, 1.0);
        let mut sys = Uniprocessor::new(spec, Box::new(RoundRobin::new())).unwrap();
        let trace = sys.run(8_000, &mut StdRng::seed_from_u64(6));
        let covert = trace.count_role(Role::CovertSender) + trace.count_role(Role::CovertReceiver);
        assert!((covert as f64 / trace.len() as f64 - 0.25).abs() < 0.01);
    }

    #[test]
    fn debug_format_mentions_policy() {
        let sys = Uniprocessor::new(WorkloadSpec::covert_pair(), Box::new(Lottery::new())).unwrap();
        assert!(format!("{sys:?}").contains("lottery"));
    }
}
