//! Error type for the scheduler substrate.

use nsc_core::CoreError;
use std::fmt;

/// Errors produced when building or measuring scheduled systems.
#[derive(Debug, Clone, PartialEq)]
pub enum SchedError {
    /// The workload specification was invalid (e.g. missing the
    /// covert pair, bad readiness probability).
    BadWorkload(String),
    /// A trace did not contain the events a measurement needs.
    EmptyTrace,
    /// An underlying core-library error.
    Core(CoreError),
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::BadWorkload(msg) => write!(f, "bad workload: {msg}"),
            SchedError::EmptyTrace => write!(f, "trace contains no covert-pair activity"),
            SchedError::Core(e) => write!(f, "core error: {e}"),
        }
    }
}

impl std::error::Error for SchedError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SchedError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for SchedError {
    fn from(e: CoreError) -> Self {
        SchedError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        for e in [
            SchedError::BadWorkload("no sender".to_owned()),
            SchedError::EmptyTrace,
            SchedError::Core(CoreError::BadSimulation("x".to_owned())),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
