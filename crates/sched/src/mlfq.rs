//! Multi-level feedback queue (MLFQ) scheduling.
//!
//! The classic interactive-systems policy: processes start at the top
//! priority level, are demoted a level each time they use a full
//! quantum, and are periodically boosted back to the top. For a
//! covert pair this produces *phases*: freshly boosted processes
//! alternate cleanly near the top, then sink together into the bottom
//! level where they round-robin with all the other CPU-bound load —
//! an interestingly bursty deletion/insertion profile that the
//! Gilbert–Elliott ablation (E11) models abstractly.

use crate::policy::Policy;
use crate::process::{Pid, Process};
use serde::{Deserialize, Serialize};

/// MLFQ configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MlfqConfig {
    /// Number of priority levels (level 0 is highest).
    pub levels: usize,
    /// Every `boost_period` quanta, all processes return to level 0.
    pub boost_period: usize,
}

impl Default for MlfqConfig {
    fn default() -> Self {
        MlfqConfig {
            levels: 3,
            boost_period: 512,
        }
    }
}

/// A multi-level feedback queue policy.
///
/// # Example
///
/// ```
/// use nsc_sched::mlfq::{Mlfq, MlfqConfig};
/// use nsc_sched::policy::Policy;
///
/// let policy = Mlfq::new(MlfqConfig::default()).unwrap();
/// assert_eq!(policy.name(), "mlfq");
/// ```
#[derive(Debug, Clone)]
pub struct Mlfq {
    config: MlfqConfig,
    /// Current level per pid (lazily sized).
    level: Vec<usize>,
    /// Round-robin cursor per level.
    cursor: Vec<usize>,
    /// Quanta since the last boost.
    since_boost: usize,
}

impl Mlfq {
    /// Creates an MLFQ policy.
    ///
    /// Returns `None` when `levels` or `boost_period` is zero.
    pub fn new(config: MlfqConfig) -> Option<Self> {
        if config.levels == 0 || config.boost_period == 0 {
            return None;
        }
        Some(Mlfq {
            config,
            level: Vec::new(),
            cursor: vec![0; config.levels],
            since_boost: 0,
        })
    }

    /// The configuration.
    pub fn config(&self) -> MlfqConfig {
        self.config
    }

    fn ensure_sized(&mut self, n: usize) {
        if self.level.len() != n {
            self.level = vec![0; n];
        }
    }
}

impl Policy for Mlfq {
    fn pick(&mut self, table: &[Process], ready: &[Pid], _rng: &mut dyn rand::RngCore) -> Pid {
        self.ensure_sized(table.len());
        // Periodic boost.
        self.since_boost += 1;
        if self.since_boost >= self.config.boost_period {
            self.since_boost = 0;
            for l in &mut self.level {
                *l = 0;
            }
        }
        // Highest (numerically lowest) level with a ready process.
        let top = ready
            .iter()
            .map(|p| self.level[p.0])
            .min()
            .expect("ready set is non-empty");
        let tier: Vec<Pid> = ready
            .iter()
            .copied()
            .filter(|p| self.level[p.0] == top)
            .collect();
        // Round-robin within the tier using the per-level cursor.
        let cur = &mut self.cursor[top];
        let winner = tier.iter().copied().find(|p| p.0 > *cur).unwrap_or(tier[0]);
        *cur = winner.0;
        // Demote: the winner used its quantum.
        self.level[winner.0] = (self.level[winner.0] + 1).min(self.config.levels - 1);
        winner
    }

    fn name(&self) -> &'static str {
        "mlfq"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::covert::measure_covert_channel;
    use crate::process::Role;
    use crate::system::{Uniprocessor, WorkloadSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn table(n: usize) -> Vec<Process> {
        (0..n).map(|_| Process::greedy(Role::Background)).collect()
    }

    #[test]
    fn construction() {
        assert!(Mlfq::new(MlfqConfig {
            levels: 0,
            boost_period: 10
        })
        .is_none());
        assert!(Mlfq::new(MlfqConfig {
            levels: 3,
            boost_period: 0
        })
        .is_none());
        assert!(Mlfq::new(MlfqConfig::default()).is_some());
    }

    #[test]
    fn fresh_processes_rotate_at_top_level() {
        let t = table(3);
        let ready: Vec<Pid> = (0..3).map(Pid).collect();
        let mut policy = Mlfq::new(MlfqConfig {
            levels: 4,
            boost_period: 1_000_000,
        })
        .unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let picks: Vec<usize> = (0..3)
            .map(|_| policy.pick(&t, &ready, &mut rng).0)
            .collect();
        // All three get a turn before anyone runs twice.
        let mut sorted = picks.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
    }

    #[test]
    fn cpu_bound_processes_sink_to_bottom() {
        let t = table(2);
        let ready: Vec<Pid> = vec![Pid(0), Pid(1)];
        let mut policy = Mlfq::new(MlfqConfig {
            levels: 3,
            boost_period: 1_000_000,
        })
        .unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            policy.pick(&t, &ready, &mut rng);
        }
        assert_eq!(policy.level, vec![2, 2]);
    }

    #[test]
    fn boost_resets_levels() {
        let t = table(2);
        let ready: Vec<Pid> = vec![Pid(0), Pid(1)];
        let mut policy = Mlfq::new(MlfqConfig {
            levels: 3,
            boost_period: 8,
        })
        .unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..7 {
            policy.pick(&t, &ready, &mut rng);
        }
        assert!(policy.level.iter().any(|&l| l > 0));
        policy.pick(&t, &ready, &mut rng); // triggers the boost
                                           // After the boost the winner was demoted once from level 0.
        assert!(policy.level.iter().all(|&l| l <= 1));
    }

    #[test]
    fn covert_pair_under_mlfq_alternates_cleanly() {
        // Two CPU-bound processes sink to the bottom tier and then
        // round-robin: the covert channel stays clean, like plain RR.
        let policy = Mlfq::new(MlfqConfig::default()).unwrap();
        let mut sys = Uniprocessor::new(WorkloadSpec::covert_pair(), Box::new(policy)).unwrap();
        let trace = sys.run(20_000, &mut StdRng::seed_from_u64(3));
        let m = measure_covert_channel(&trace, 1, &mut StdRng::seed_from_u64(4)).unwrap();
        assert!(m.p_d < 0.01, "p_d = {}", m.p_d);
    }

    #[test]
    fn blocking_background_perturbs_the_pair() {
        // Interactive background (blocks often) keeps getting boosted
        // above the sunk covert pair, injecting gaps.
        let policy = Mlfq::new(MlfqConfig {
            levels: 3,
            boost_period: 64,
        })
        .unwrap();
        let spec = WorkloadSpec::covert_pair().with_background(2, 0.3);
        let mut sys = Uniprocessor::new(spec, Box::new(policy)).unwrap();
        let trace = sys.run(40_000, &mut StdRng::seed_from_u64(5));
        let m = measure_covert_channel(&trace, 1, &mut StdRng::seed_from_u64(6)).unwrap();
        // The pair still communicates, but less cleanly than bare RR.
        assert!(m.covert_share() < 1.0);
        assert!(m.writes > 0 && m.reads > 0);
    }
}
