//! Schedule traces: who ran at each quantum.

use crate::process::{Pid, Role};
use serde::{Deserialize, Serialize};

/// One quantum of the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Quantum {
    /// The given process ran.
    Ran(Pid),
    /// No process was ready; the CPU idled.
    Idle,
}

/// A complete schedule trace, together with the role of every pid so
/// measurements can find the covert pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    quanta: Vec<Quantum>,
    roles: Vec<Role>,
}

impl Trace {
    /// Creates a trace from raw quanta and the process role table.
    pub fn new(quanta: Vec<Quantum>, roles: Vec<Role>) -> Self {
        Trace { quanta, roles }
    }

    /// The quanta in order.
    pub fn quanta(&self) -> &[Quantum] {
        &self.quanta
    }

    /// Role table indexed by pid.
    pub fn roles(&self) -> &[Role] {
        &self.roles
    }

    /// Total quanta (the physical time base).
    pub fn len(&self) -> usize {
        self.quanta.len()
    }

    /// `true` when the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.quanta.is_empty()
    }

    /// Role that ran at quantum `i`, if any.
    pub fn role_at(&self, i: usize) -> Option<Role> {
        match self.quanta.get(i)? {
            Quantum::Ran(pid) => self.roles.get(pid.0).copied(),
            Quantum::Idle => None,
        }
    }

    /// Number of quanta in which a process with `role` ran.
    pub fn count_role(&self, role: Role) -> usize {
        (0..self.len())
            .filter(|&i| self.role_at(i) == Some(role))
            .count()
    }

    /// Fraction of quanta spent idle.
    pub fn idle_fraction(&self) -> f64 {
        if self.quanta.is_empty() {
            return 0.0;
        }
        let idle = self
            .quanta
            .iter()
            .filter(|q| matches!(q, Quantum::Idle))
            .count();
        idle as f64 / self.quanta.len() as f64
    }

    /// CPU share of each pid (fractions of total quanta).
    pub fn cpu_shares(&self) -> Vec<f64> {
        let mut counts = vec![0usize; self.roles.len()];
        for q in &self.quanta {
            if let Quantum::Ran(pid) = q {
                counts[pid.0] += 1;
            }
        }
        counts
            .into_iter()
            .map(|c| {
                if self.quanta.is_empty() {
                    0.0
                } else {
                    c as f64 / self.quanta.len() as f64
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace::new(
            vec![
                Quantum::Ran(Pid(0)),
                Quantum::Ran(Pid(1)),
                Quantum::Idle,
                Quantum::Ran(Pid(2)),
                Quantum::Ran(Pid(0)),
            ],
            vec![Role::CovertSender, Role::CovertReceiver, Role::Background],
        )
    }

    #[test]
    fn role_lookup() {
        let t = sample();
        assert_eq!(t.role_at(0), Some(Role::CovertSender));
        assert_eq!(t.role_at(1), Some(Role::CovertReceiver));
        assert_eq!(t.role_at(2), None);
        assert_eq!(t.role_at(3), Some(Role::Background));
        assert_eq!(t.role_at(99), None);
    }

    #[test]
    fn counting_and_shares() {
        let t = sample();
        assert_eq!(t.count_role(Role::CovertSender), 2);
        assert_eq!(t.count_role(Role::Background), 1);
        assert_eq!(t.len(), 5);
        assert!(!t.is_empty());
        assert!((t.idle_fraction() - 0.2).abs() < 1e-12);
        let shares = t.cpu_shares();
        assert!((shares[0] - 0.4).abs() < 1e-12);
        assert!((shares[1] - 0.2).abs() < 1e-12);
    }

    #[test]
    fn empty_trace() {
        let t = Trace::new(vec![], vec![]);
        assert!(t.is_empty());
        assert_eq!(t.idle_fraction(), 0.0);
        assert!(t.cpu_shares().is_empty());
    }
}
