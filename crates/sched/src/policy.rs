//! Scheduling policies.
//!
//! Each policy picks, among the *ready* processes of a quantum, the
//! one that runs. The set of policies spans the design space the
//! paper's §3.2 alludes to: deterministic fairness (round-robin,
//! stride), probabilistic fairness (lottery, uniform random), and
//! strict precedence (fixed priority). Their covert-channel
//! characteristics differ sharply — experiment E8 quantifies this.

use crate::process::{Pid, Process};
use rand::Rng;

/// A scheduling policy over a fixed process table.
///
/// `pick` receives the full table and the pids that are ready this
/// quantum (non-empty, sorted ascending) and returns the pid to run.
pub trait Policy {
    /// Chooses which ready process runs this quantum.
    fn pick(&mut self, table: &[Process], ready: &[Pid], rng: &mut dyn rand::RngCore) -> Pid;

    /// Human-readable policy name for reports.
    fn name(&self) -> &'static str;
}

/// Classic round-robin: cycle through pids, skipping non-ready ones.
#[derive(Debug, Clone, Default)]
pub struct RoundRobin {
    last: Option<usize>,
}

impl RoundRobin {
    /// Creates a round-robin policy.
    pub fn new() -> Self {
        RoundRobin::default()
    }
}

impl Policy for RoundRobin {
    fn pick(&mut self, table: &[Process], ready: &[Pid], _rng: &mut dyn rand::RngCore) -> Pid {
        let n = table.len();
        let start = self.last.map(|l| (l + 1) % n).unwrap_or(0);
        // First ready pid at or after `start`, cyclically.
        for off in 0..n {
            let candidate = Pid((start + off) % n);
            if ready.contains(&candidate) {
                self.last = Some(candidate.0);
                return candidate;
            }
        }
        unreachable!("ready set is non-empty");
    }

    fn name(&self) -> &'static str {
        "round-robin"
    }
}

/// Fixed priority: the highest-priority ready process runs; ties
/// break round-robin among the tied set.
#[derive(Debug, Clone, Default)]
pub struct FixedPriority {
    rr: RoundRobin,
}

impl FixedPriority {
    /// Creates a fixed-priority policy.
    pub fn new() -> Self {
        FixedPriority::default()
    }
}

impl Policy for FixedPriority {
    fn pick(&mut self, table: &[Process], ready: &[Pid], rng: &mut dyn rand::RngCore) -> Pid {
        let top = ready
            .iter()
            .map(|p| table[p.0].priority)
            .max()
            .expect("ready set is non-empty");
        let tied: Vec<Pid> = ready
            .iter()
            .copied()
            .filter(|p| table[p.0].priority == top)
            .collect();
        self.rr.pick(table, &tied, rng)
    }

    fn name(&self) -> &'static str {
        "fixed-priority"
    }
}

/// Lottery scheduling: a ready process wins with probability
/// proportional to its ticket count (`weight`).
#[derive(Debug, Clone, Default)]
pub struct Lottery;

impl Lottery {
    /// Creates a lottery policy.
    pub fn new() -> Self {
        Lottery
    }
}

impl Policy for Lottery {
    fn pick(&mut self, table: &[Process], ready: &[Pid], rng: &mut dyn rand::RngCore) -> Pid {
        let total: u64 = ready.iter().map(|p| table[p.0].weight as u64).sum();
        if total == 0 {
            // All-zero tickets degenerate to uniform.
            return ready[rng.gen_range(0..ready.len())];
        }
        let mut draw = rng.gen_range(0..total);
        for &p in ready {
            let w = table[p.0].weight as u64;
            if draw < w {
                return p;
            }
            draw -= w;
        }
        unreachable!("draw < total tickets");
    }

    fn name(&self) -> &'static str {
        "lottery"
    }
}

/// Stride scheduling: deterministic proportional share. Each process
/// advances a *pass* value by `STRIDE_UNIT / weight` when it runs;
/// the ready process with the smallest pass runs next.
#[derive(Debug, Clone, Default)]
pub struct Stride {
    passes: Vec<f64>,
}

/// The stride numerator (any constant works; this matches the
/// original paper's large-integer convention).
const STRIDE_UNIT: f64 = (1 << 20) as f64;

impl Stride {
    /// Creates a stride policy.
    pub fn new() -> Self {
        Stride::default()
    }
}

impl Policy for Stride {
    fn pick(&mut self, table: &[Process], ready: &[Pid], _rng: &mut dyn rand::RngCore) -> Pid {
        if self.passes.len() != table.len() {
            self.passes = vec![0.0; table.len()];
        }
        let winner = ready
            .iter()
            .copied()
            .min_by(|a, b| {
                self.passes[a.0]
                    .partial_cmp(&self.passes[b.0])
                    .expect("passes are finite")
                    .then(a.0.cmp(&b.0))
            })
            .expect("ready set is non-empty");
        let w = table[winner.0].weight.max(1) as f64;
        self.passes[winner.0] += STRIDE_UNIT / w;
        winner
    }

    fn name(&self) -> &'static str {
        "stride"
    }
}

/// Uniformly random among ready processes, ignoring weights — the
/// maximally scheduler-noise-injecting baseline sometimes proposed
/// as covert-channel mitigation.
#[derive(Debug, Clone, Default)]
pub struct UniformRandom;

impl UniformRandom {
    /// Creates a uniform-random policy.
    pub fn new() -> Self {
        UniformRandom
    }
}

impl Policy for UniformRandom {
    fn pick(&mut self, _table: &[Process], ready: &[Pid], rng: &mut dyn rand::RngCore) -> Pid {
        ready[rng.gen_range(0..ready.len())]
    }

    fn name(&self) -> &'static str {
        "uniform-random"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::Role;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn table(n: usize) -> Vec<Process> {
        (0..n).map(|_| Process::greedy(Role::Background)).collect()
    }

    fn pids(ids: &[usize]) -> Vec<Pid> {
        ids.iter().map(|&i| Pid(i)).collect()
    }

    #[test]
    fn round_robin_cycles() {
        let t = table(3);
        let ready = pids(&[0, 1, 2]);
        let mut rr = RoundRobin::new();
        let mut rng = StdRng::seed_from_u64(0);
        let picks: Vec<usize> = (0..6).map(|_| rr.pick(&t, &ready, &mut rng).0).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn round_robin_skips_blocked() {
        let t = table(3);
        let mut rr = RoundRobin::new();
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(rr.pick(&t, &pids(&[0, 1, 2]), &mut rng).0, 0);
        // Process 1 blocked: jump to 2.
        assert_eq!(rr.pick(&t, &pids(&[0, 2]), &mut rng).0, 2);
        assert_eq!(rr.pick(&t, &pids(&[0, 1, 2]), &mut rng).0, 0);
    }

    #[test]
    fn fixed_priority_prefers_high() {
        let mut t = table(3);
        t[1].priority = 9;
        let mut fp = FixedPriority::new();
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..5 {
            assert_eq!(fp.pick(&t, &pids(&[0, 1, 2]), &mut rng).0, 1);
        }
        // When 1 is blocked, ties among {0, 2} rotate.
        let a = fp.pick(&t, &pids(&[0, 2]), &mut rng).0;
        let b = fp.pick(&t, &pids(&[0, 2]), &mut rng).0;
        assert_ne!(a, b);
    }

    #[test]
    fn lottery_respects_ticket_ratios() {
        let mut t = table(2);
        t[0].weight = 3;
        t[1].weight = 1;
        let mut lot = Lottery::new();
        let mut rng = StdRng::seed_from_u64(1);
        let ready = pids(&[0, 1]);
        let n = 40_000;
        let wins0 = (0..n)
            .filter(|_| lot.pick(&t, &ready, &mut rng).0 == 0)
            .count();
        let share = wins0 as f64 / n as f64;
        assert!((share - 0.75).abs() < 0.01, "share = {share}");
    }

    #[test]
    fn lottery_handles_zero_tickets() {
        let mut t = table(2);
        t[0].weight = 0;
        t[1].weight = 0;
        let mut lot = Lottery::new();
        let mut rng = StdRng::seed_from_u64(2);
        let p = lot.pick(&t, &pids(&[0, 1]), &mut rng);
        assert!(p.0 < 2);
    }

    #[test]
    fn stride_is_proportional_and_deterministic() {
        let mut t = table(2);
        t[0].weight = 2;
        t[1].weight = 1;
        let mut st = Stride::new();
        let mut rng = StdRng::seed_from_u64(3);
        let ready = pids(&[0, 1]);
        let n = 3000;
        let runs0 = (0..n)
            .filter(|_| st.pick(&t, &ready, &mut rng).0 == 0)
            .count();
        let share = runs0 as f64 / n as f64;
        assert!((share - 2.0 / 3.0).abs() < 0.01, "share = {share}");
        // Determinism: same sequence again.
        let mut st2 = Stride::new();
        let seq1: Vec<usize> = (0..50).map(|_| st2.pick(&t, &ready, &mut rng).0).collect();
        let mut st3 = Stride::new();
        let seq2: Vec<usize> = (0..50).map(|_| st3.pick(&t, &ready, &mut rng).0).collect();
        assert_eq!(seq1, seq2);
    }

    #[test]
    fn uniform_random_ignores_weights() {
        let mut t = table(2);
        t[0].weight = 1000;
        t[1].weight = 1;
        let mut ur = UniformRandom::new();
        let mut rng = StdRng::seed_from_u64(4);
        let ready = pids(&[0, 1]);
        let n = 40_000;
        let wins0 = (0..n)
            .filter(|_| ur.pick(&t, &ready, &mut rng).0 == 0)
            .count();
        assert!((wins0 as f64 / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn policy_names() {
        assert_eq!(RoundRobin::new().name(), "round-robin");
        assert_eq!(FixedPriority::new().name(), "fixed-priority");
        assert_eq!(Lottery::new().name(), "lottery");
        assert_eq!(Stride::new().name(), "stride");
        assert_eq!(UniformRandom::new().name(), "uniform-random");
    }
}
