//! From schedule traces to covert-channel measurements.
//!
//! A schedule trace induces an *operation schedule* for the covert
//! pair: every quantum in which the sender (receiver) ran is one
//! opportunity to write (read) the shared variable. Feeding that
//! schedule into `nsc-core`'s mechanistic runners yields the measured
//! `P_d` and `P_i` the paper's estimation recipe needs — and lets the
//! same synchronization protocols run over *real* scheduler behaviour
//! instead of an abstract Bernoulli model.

use crate::error::SchedError;
use crate::process::Role;
use crate::trace::Trace;
use nsc_channel::alphabet::{Alphabet, Symbol};
use nsc_core::sim::counter::{run_counter_protocol, CounterOutcome};
use nsc_core::sim::unsync::run_unsynchronized;
use nsc_core::sim::{Party, TraceSchedule};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Extracts the covert pair's operation schedule from a trace
/// (background and idle quanta grant no operation).
pub fn ops_from_trace(trace: &Trace) -> Vec<Party> {
    (0..trace.len())
        .filter_map(|i| match trace.role_at(i) {
            Some(Role::CovertSender) => Some(Party::Sender),
            Some(Role::CovertReceiver) => Some(Party::Receiver),
            _ => None,
        })
        .collect()
}

/// Deletion/insertion measurement of a scheduled covert channel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChannelMeasurement {
    /// Measured deletion probability (overwrites per write).
    pub p_d: f64,
    /// Measured insertion probability (stale reads per read).
    pub p_i: f64,
    /// Writes the sender performed.
    pub writes: usize,
    /// Reads the receiver performed.
    pub reads: usize,
    /// Covert-pair operations in the trace.
    pub covert_ops: usize,
    /// Total quanta in the trace (the physical time base, including
    /// background and idle time).
    pub total_quanta: usize,
}

impl ChannelMeasurement {
    /// Fraction of machine time the covert pair actually got — the
    /// dilution factor background load imposes on physical rates.
    pub fn covert_share(&self) -> f64 {
        if self.total_quanta == 0 {
            0.0
        } else {
            self.covert_ops as f64 / self.total_quanta as f64
        }
    }
}

/// Runs the *unsynchronized* covert pair over the trace and measures
/// `P_d` and `P_i` (§3.1's experiment). `bits` sets the symbol width
/// of the shared variable; `rng` draws the random pilot message.
///
/// # Errors
///
/// Returns [`SchedError::EmptyTrace`] when the trace gives the covert
/// pair no operations (e.g. total starvation), or a wrapped core
/// error if the mechanistic run fails.
pub fn measure_covert_channel<R: Rng + ?Sized>(
    trace: &Trace,
    bits: u32,
    rng: &mut R,
) -> Result<ChannelMeasurement, SchedError> {
    let ops = ops_from_trace(trace);
    let sender_ops = ops.iter().filter(|p| **p == Party::Sender).count();
    if ops.is_empty() || sender_ops == 0 {
        return Err(SchedError::EmptyTrace);
    }
    let alphabet =
        Alphabet::new(bits).map_err(|e| SchedError::Core(nsc_core::CoreError::Channel(e)))?;
    let message: Vec<Symbol> = (0..sender_ops).map(|_| alphabet.random(rng)).collect();
    let mut schedule = TraceSchedule::new(ops.clone());
    let outcome = run_unsynchronized(&message, &mut schedule, usize::MAX)?;
    Ok(ChannelMeasurement {
        p_d: outcome.p_d(),
        p_i: outcome.p_i(),
        writes: outcome.writes,
        reads: outcome.reads,
        covert_ops: ops.len(),
        total_quanta: trace.len(),
    })
}

/// Runs the Appendix A counter protocol over the trace's operation
/// schedule, transmitting `message`.
///
/// # Errors
///
/// Returns [`SchedError::EmptyTrace`] for a trace without covert-pair
/// operations, or a wrapped core error.
pub fn counter_protocol_over_trace(
    trace: &Trace,
    message: &[Symbol],
) -> Result<CounterOutcome, SchedError> {
    let ops = ops_from_trace(trace);
    if ops.is_empty() {
        return Err(SchedError::EmptyTrace);
    }
    let mut schedule = TraceSchedule::new(ops);
    Ok(run_counter_protocol(message, &mut schedule, usize::MAX)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Lottery, RoundRobin};
    use crate::system::{Uniprocessor, WorkloadSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ops_extraction_skips_background_and_idle() {
        use crate::process::Pid;
        use crate::trace::Quantum;
        let t = Trace::new(
            vec![
                Quantum::Ran(Pid(0)),
                Quantum::Ran(Pid(2)),
                Quantum::Idle,
                Quantum::Ran(Pid(1)),
            ],
            vec![Role::CovertSender, Role::CovertReceiver, Role::Background],
        );
        assert_eq!(ops_from_trace(&t), vec![Party::Sender, Party::Receiver]);
    }

    #[test]
    fn round_robin_pair_has_clean_channel() {
        let mut sys =
            Uniprocessor::new(WorkloadSpec::covert_pair(), Box::new(RoundRobin::new())).unwrap();
        let trace = sys.run(10_000, &mut StdRng::seed_from_u64(0));
        let m = measure_covert_channel(&trace, 1, &mut StdRng::seed_from_u64(1)).unwrap();
        assert_eq!(m.p_d, 0.0);
        assert_eq!(m.p_i, 0.0);
        assert!((m.covert_share() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lottery_pair_is_noisy() {
        let mut sys =
            Uniprocessor::new(WorkloadSpec::covert_pair(), Box::new(Lottery::new())).unwrap();
        let trace = sys.run(50_000, &mut StdRng::seed_from_u64(2));
        let m = measure_covert_channel(&trace, 1, &mut StdRng::seed_from_u64(3)).unwrap();
        // Fair lottery ≈ Bernoulli(1/2): both rates near one half.
        assert!((m.p_d - 0.5).abs() < 0.03, "p_d = {}", m.p_d);
        assert!((m.p_i - 0.5).abs() < 0.03, "p_i = {}", m.p_i);
    }

    #[test]
    fn starved_receiver_yields_error() {
        use crate::policy::FixedPriority;
        let spec = WorkloadSpec::covert_pair().map_sender(|p| p.with_priority(9));
        let mut sys = Uniprocessor::new(spec, Box::new(FixedPriority::new())).unwrap();
        let trace = sys.run(1000, &mut StdRng::seed_from_u64(4));
        // Receiver never runs: the unsync measurement still works
        // (p_d -> 1 as every write overwrites), sender ops > 0.
        let m = measure_covert_channel(&trace, 1, &mut StdRng::seed_from_u64(5)).unwrap();
        assert!(m.p_d > 0.99);
        assert_eq!(m.reads, 0);
    }

    #[test]
    fn empty_trace_is_rejected() {
        let t = Trace::new(vec![], vec![]);
        assert!(matches!(
            measure_covert_channel(&t, 1, &mut StdRng::seed_from_u64(0)),
            Err(SchedError::EmptyTrace)
        ));
        assert!(matches!(
            counter_protocol_over_trace(&t, &[Symbol::from_index(0)]),
            Err(SchedError::EmptyTrace)
        ));
    }

    #[test]
    fn counter_protocol_over_lottery_trace_stays_aligned() {
        let mut sys =
            Uniprocessor::new(WorkloadSpec::covert_pair(), Box::new(Lottery::new())).unwrap();
        let trace = sys.run(60_000, &mut StdRng::seed_from_u64(6));
        let a = Alphabet::new(3).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let message: Vec<Symbol> = (0..5_000).map(|_| a.random(&mut rng)).collect();
        let out = counter_protocol_over_trace(&trace, &message).unwrap();
        assert!(!out.received.is_empty());
        // Positions are aligned: error rate well below 1 even under
        // heavy insertion (alpha model keeps 1/8 of stale fills
        // correct, and roughly half of positions are fresh).
        let err = out.symbol_error_rate(&message[..out.received.len()]);
        assert!(err < 0.6, "error rate {err}");
    }

    #[test]
    fn background_load_shrinks_covert_share() {
        let spec = WorkloadSpec::covert_pair().with_background(2, 1.0);
        let mut sys = Uniprocessor::new(spec, Box::new(RoundRobin::new())).unwrap();
        let trace = sys.run(8_000, &mut StdRng::seed_from_u64(8));
        let m = measure_covert_channel(&trace, 1, &mut StdRng::seed_from_u64(9)).unwrap();
        assert!((m.covert_share() - 0.5).abs() < 0.01);
        // Round-robin keeps the pair alternating even with background
        // in between, so the channel stays clean.
        assert_eq!(m.p_d, 0.0);
    }
}
