//! Uniprocessor scheduler simulator and covert-channel measurement
//! substrate.
//!
//! §3.1 of Wang & Lee's paper grounds non-synchrony in a concrete
//! mechanism: *"In most operating systems, the scheduler determines
//! when and who can gain the CPU. Depending on the scheduling
//! algorithm, it is very likely that the sender is woken up twice
//! without the receiver being able to run in between, or the receiver
//! is woken up twice without the sender being able to run in
//! between. In the former case a symbol is dropped while in the
//! latter case an extra symbol is inserted."*
//!
//! This crate builds that system: a discrete-time uniprocessor
//! ([`system::Uniprocessor`]) running a covert sender/receiver pair
//! plus background load under pluggable scheduling policies
//! ([`policy`]): round-robin, fixed priority, lottery, stride
//! (proportional share), and uniformly random. The resulting
//! schedule traces convert into operation schedules for `nsc-core`'s
//! protocol runners ([`covert`]), closing the loop the paper asks
//! for: *"Our method can be used to evaluate the effectiveness of
//! candidate system implementations, e.g., the scheduler, in reducing
//! covert channel capacities."* ([`mitigation`]).
//!
//! # Example
//!
//! ```
//! use nsc_sched::policy::Lottery;
//! use nsc_sched::system::{Uniprocessor, WorkloadSpec};
//! use nsc_sched::covert::measure_covert_channel;
//! use rand::SeedableRng;
//! use rand::rngs::StdRng;
//!
//! let spec = WorkloadSpec::covert_pair().with_background(2, 1.0);
//! let mut system = Uniprocessor::new(spec, Box::new(Lottery::new()))?;
//! let trace = system.run(20_000, &mut StdRng::seed_from_u64(1));
//! let m = measure_covert_channel(&trace, 2, &mut StdRng::seed_from_u64(2))?;
//! assert!(m.p_d > 0.0); // lottery scheduling drops symbols
//! # Ok::<(), nsc_sched::SchedError>(())
//! ```

pub mod covert;
pub mod error;
pub mod mitigation;
pub mod mlfq;
pub mod policy;
pub mod process;
pub mod system;
pub mod timing;
pub mod trace;

pub use error::SchedError;
pub use process::{Pid, Process, Role};
pub use trace::Trace;
