//! A scheduler-borne covert *timing* channel.
//!
//! The storage channel of [`crate::covert`] leaks through a shared
//! variable's *value*; this module leaks through *time*, the other
//! classic family (Millen's FSMs, Moskowitz's STC, the timed
//! Z-channel — the paper's §2 baselines): the sender modulates how
//! long the receiver waits between its own runs.
//!
//! * Bit `0`: the sender stays off the run queue — the receiver's
//!   next inter-run gap is short.
//! * Bit `1`: the sender makes itself runnable once before the
//!   receiver's next run — the gap stretches.
//!
//! Non-synchrony appears exactly as the paper predicts. The sender
//! can only update its behaviour when it observes the receiver having
//! run (it "polls" shared state when scheduled, with probability
//! `poll_prob` per quantum otherwise). When the receiver runs twice
//! before the sender notices, the old bit is *re-read* (insertion)
//! and intervening bits are *skipped* (deletion); background load
//! inflates gaps (substitution). The measured `(P_d, P_i, P_s)` feed
//! the paper's correction on top of a traditional timed-channel
//! capacity estimate.

use crate::error::SchedError;
use crate::mitigation::PolicyKind;
use crate::process::{Pid, Process, Role};
use nsc_channel::timed_z::TimedZChannel;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of a timing-channel run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingConfig {
    /// Scheduling policy.
    pub policy: PolicyKind,
    /// Probability per quantum that the (descheduled) sender gets to
    /// observe the receiver's progress — the covert pair's only
    /// synchronization resource.
    pub poll_prob: f64,
    /// Number of background processes.
    pub background: usize,
    /// Background readiness probability.
    pub bg_ready: f64,
}

impl Default for TimingConfig {
    fn default() -> Self {
        TimingConfig {
            policy: PolicyKind::RoundRobin,
            poll_prob: 1.0,
            background: 0,
            bg_ready: 1.0,
        }
    }
}

/// One receiver observation: the measured gap and (ground truth) the
/// bit index the sender was exposing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GapSample {
    /// Quanta since the receiver's previous run.
    pub gap: usize,
    /// Ground-truth index of the sender's current bit.
    pub bit_index: usize,
}

/// Result of a timing-channel run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimingRun {
    /// The bits the sender tried to convey.
    pub sent: Vec<bool>,
    /// The receiver's observations in order.
    pub samples: Vec<GapSample>,
    /// Total quanta simulated.
    pub quanta: usize,
}

/// Symbol-level channel measurement extracted from a timing run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingMeasurement {
    /// Deletion probability: bits skipped / bits consumed.
    pub p_d: f64,
    /// Insertion probability: repeated reads / total reads.
    pub p_i: f64,
    /// Substitution probability: wrong decodes among first-aligned
    /// reads.
    pub p_s: f64,
    /// Mean gap observed for bit 0 (first-aligned reads only).
    pub mean_gap_zero: f64,
    /// Mean gap observed for bit 1.
    pub mean_gap_one: f64,
    /// Traditional (synchronous-model) capacity of the matched timed
    /// Z-channel, bits per quantum.
    pub traditional_capacity: f64,
    /// The paper's corrected capacity `traditional · (1 − P_d)`.
    pub corrected_capacity: f64,
}

/// Runs the timing channel for `message` bits, for at most
/// `max_quanta` quanta.
///
/// # Errors
///
/// Returns [`SchedError::BadWorkload`] for an empty message or
/// invalid probabilities.
pub fn run_timing_channel<R: Rng>(
    message: &[bool],
    config: &TimingConfig,
    max_quanta: usize,
    rng: &mut R,
) -> Result<TimingRun, SchedError> {
    if message.is_empty() {
        return Err(SchedError::BadWorkload("message is empty".to_owned()));
    }
    for (name, v) in [
        ("poll_prob", config.poll_prob),
        ("bg_ready", config.bg_ready),
    ] {
        if !v.is_finite() || !(0.0..=1.0).contains(&v) {
            return Err(SchedError::BadWorkload(format!(
                "{name} = {v} is not a probability"
            )));
        }
    }
    // Process table: 0 = sender, 1 = receiver, 2.. = background.
    let mut table = vec![
        Process::greedy(Role::CovertSender),
        Process::greedy(Role::CovertReceiver),
    ];
    for _ in 0..config.background {
        table.push(Process::greedy(Role::Background).with_ready_prob(config.bg_ready));
    }
    let mut policy = config.policy.build();

    let mut run = TimingRun {
        sent: message.to_vec(),
        samples: Vec::new(),
        quanta: 0,
    };
    // Sender state.
    let mut bit_index = 0usize;
    let mut seen_receiver_runs = 0usize;
    let mut ran_this_window = false;
    // Receiver state.
    let mut receiver_runs = 0usize;
    let mut last_receiver_quantum: Option<usize> = None;

    let mut ready_buf: Vec<Pid> = Vec::with_capacity(table.len());
    while run.quanta < max_quanta && bit_index < message.len() {
        let t = run.quanta;
        run.quanta += 1;
        // Build the ready set. The sender is runnable only when it is
        // signalling a 1 and has not yet stretched this window.
        ready_buf.clear();
        let sender_wants_cpu = message[bit_index] && !ran_this_window;
        if sender_wants_cpu {
            ready_buf.push(Pid(0));
        }
        ready_buf.push(Pid(1));
        for (i, p) in table.iter().enumerate().skip(2) {
            if p.ready_prob >= 1.0 || rng.gen::<f64>() < p.ready_prob {
                ready_buf.push(Pid(i));
            }
        }
        ready_buf.sort_unstable();
        let picked = policy.pick(&table, &ready_buf, rng);
        match picked {
            Pid(0) => {
                // Sender ran: it stretches the gap and synchronizes.
                ran_this_window = true;
                sync_sender(&mut bit_index, &mut seen_receiver_runs, receiver_runs);
            }
            Pid(1) => {
                let gap = match last_receiver_quantum {
                    Some(prev) => t - prev,
                    None => t + 1,
                };
                last_receiver_quantum = Some(t);
                // The sample is attributed to the bit the sender was
                // exposing during this window.
                run.samples.push(GapSample { gap, bit_index });
                receiver_runs += 1;
            }
            _ => {}
        }
        // Polling: even descheduled, the sender may observe progress.
        if picked != Pid(0) && (config.poll_prob >= 1.0 || rng.gen::<f64>() < config.poll_prob) {
            let before = seen_receiver_runs;
            sync_sender(&mut bit_index, &mut seen_receiver_runs, receiver_runs);
            if seen_receiver_runs > before {
                ran_this_window = false;
            }
        }
    }
    Ok(run)
}

/// Advances the sender's bit index by the number of receiver runs it
/// newly observes (each run consumed one exposed bit).
fn sync_sender(bit_index: &mut usize, seen: &mut usize, actual: usize) {
    if actual > *seen {
        *bit_index += actual - *seen;
        *seen = actual;
    }
}

/// Gap-threshold decoder: gaps of at least `threshold` decode as 1.
pub fn decode_gaps(samples: &[GapSample], threshold: usize) -> Vec<bool> {
    samples.iter().map(|s| s.gap >= threshold).collect()
}

impl TimingRun {
    /// Extracts the symbol-level measurement: deletions (skipped bit
    /// indices), insertions (repeated indices), substitutions (wrong
    /// decode on the first-aligned read of an index), gap statistics,
    /// and the traditional + corrected capacities.
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::EmptyTrace`] when the run produced no
    /// samples, and wraps numerical failures of the timed-Z solver.
    pub fn measure(&self, threshold: usize) -> Result<TimingMeasurement, SchedError> {
        if self.samples.is_empty() {
            return Err(SchedError::EmptyTrace);
        }
        let decoded = decode_gaps(&self.samples, threshold);
        let mut insertions = 0usize;
        let mut substitutions = 0usize;
        let mut aligned_reads = 0usize;
        let mut gap0 = (0usize, 0usize); // (sum, count)
        let mut gap1 = (0usize, 0usize);
        let mut last_index: Option<usize> = None;
        let mut max_index_read = 0usize;
        for (s, &bit_hat) in self.samples.iter().zip(&decoded) {
            if last_index == Some(s.bit_index) {
                insertions += 1;
            } else {
                aligned_reads += 1;
                let truth = self.sent[s.bit_index];
                if bit_hat != truth {
                    substitutions += 1;
                }
                if truth {
                    gap1.0 += s.gap;
                    gap1.1 += 1;
                } else {
                    gap0.0 += s.gap;
                    gap0.1 += 1;
                }
            }
            max_index_read = max_index_read.max(s.bit_index);
            last_index = Some(s.bit_index);
        }
        // Deletions: indices in 0..=max_index_read never read.
        let mut read_any = vec![false; max_index_read + 1];
        for s in &self.samples {
            read_any[s.bit_index] = true;
        }
        let deletions = read_any.iter().filter(|&&r| !r).count();
        let consumed = max_index_read + 1;
        let mean0 = if gap0.1 > 0 {
            gap0.0 as f64 / gap0.1 as f64
        } else {
            1.0
        };
        let mean1 = if gap1.1 > 0 {
            gap1.0 as f64 / gap1.1 as f64
        } else {
            2.0
        };
        // Traditional estimate: a timed Z-channel with the measured
        // mean durations and the measured 1 -> 0 confusion.
        let one_errors = self
            .samples
            .iter()
            .zip(&decoded)
            .filter(|(s, &d)| self.sent[s.bit_index] && !d)
            .count();
        let ones_read = self
            .samples
            .iter()
            .filter(|s| self.sent[s.bit_index])
            .count();
        let crossover = if ones_read > 0 {
            (one_errors as f64 / ones_read as f64).min(1.0)
        } else {
            0.0
        };
        let z = TimedZChannel::new(crossover, mean0.max(0.5), mean1.max(mean0.max(0.5) + 1e-9))
            .map_err(|e| SchedError::Core(nsc_core::CoreError::Channel(e)))?;
        let traditional = z
            .capacity()
            .map_err(|e| SchedError::Core(nsc_core::CoreError::Numeric(e)))?;
        let p_d = deletions as f64 / consumed as f64;
        Ok(TimingMeasurement {
            p_d,
            p_i: insertions as f64 / self.samples.len() as f64,
            p_s: if aligned_reads > 0 {
                substitutions as f64 / aligned_reads as f64
            } else {
                0.0
            },
            mean_gap_zero: mean0,
            mean_gap_one: mean1,
            traditional_capacity: traditional,
            corrected_capacity: traditional * (1.0 - p_d),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bits(n: usize, seed: u64) -> Vec<bool> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen()).collect()
    }

    #[test]
    fn validation() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(run_timing_channel(&[], &TimingConfig::default(), 100, &mut rng).is_err());
        let bad = TimingConfig {
            poll_prob: 1.5,
            ..Default::default()
        };
        assert!(run_timing_channel(&[true], &bad, 100, &mut rng).is_err());
    }

    #[test]
    fn clean_round_robin_is_a_perfect_telegraph() {
        // RR, no background, perfect polling: gap 1 for 0, gap 2 for
        // 1, one sample per bit.
        let msg = bits(500, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let run = run_timing_channel(&msg, &TimingConfig::default(), usize::MAX, &mut rng).unwrap();
        let m = run.measure(2).unwrap();
        assert_eq!(m.p_d, 0.0);
        assert_eq!(m.p_i, 0.0);
        assert_eq!(m.p_s, 0.0);
        assert!((m.mean_gap_zero - 1.0).abs() < 1e-9);
        assert!((m.mean_gap_one - 2.0).abs() < 1e-9);
        // Telegraph capacity log2(phi) at t = {1, 2}.
        let phi = (1.0 + 5.0f64.sqrt()) / 2.0;
        assert!((m.traditional_capacity - phi.log2()).abs() < 1e-4);
        assert_eq!(m.corrected_capacity, m.traditional_capacity);
        // Decoded bits equal the message, one per sample.
        let decoded = decode_gaps(&run.samples, 2);
        assert_eq!(decoded.len(), msg.len());
        assert!(decoded.iter().zip(&msg).all(|(a, b)| a == b));
    }

    #[test]
    fn weak_polling_creates_insertions_and_deletions() {
        let msg = bits(2000, 3);
        let config = TimingConfig {
            poll_prob: 0.3,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(4);
        let run = run_timing_channel(&msg, &config, usize::MAX, &mut rng).unwrap();
        let m = run.measure(2).unwrap();
        assert!(m.p_i > 0.05, "p_i = {}", m.p_i);
        assert!(m.p_d > 0.05, "p_d = {}", m.p_d);
        assert!(m.corrected_capacity < m.traditional_capacity);
    }

    #[test]
    fn background_load_adds_substitution_noise() {
        let msg = bits(2000, 5);
        let config = TimingConfig {
            policy: PolicyKind::Lottery,
            background: 2,
            bg_ready: 0.8,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(6);
        let run = run_timing_channel(&msg, &config, usize::MAX, &mut rng).unwrap();
        let m = run.measure(2).unwrap();
        assert!(m.p_s > 0.02, "p_s = {}", m.p_s);
        // Gap means still separate the symbols.
        assert!(m.mean_gap_one > m.mean_gap_zero);
        assert!(m.traditional_capacity > 0.0);
    }

    #[test]
    fn corrected_capacity_tracks_deletions() {
        let msg = bits(3000, 7);
        let config = TimingConfig {
            poll_prob: 0.2,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(8);
        let run = run_timing_channel(&msg, &config, usize::MAX, &mut rng).unwrap();
        let m = run.measure(2).unwrap();
        assert!((m.corrected_capacity - m.traditional_capacity * (1.0 - m.p_d)).abs() < 1e-12);
    }

    #[test]
    fn quanta_budget_respected() {
        let msg = bits(1_000_000, 9);
        let mut rng = StdRng::seed_from_u64(10);
        let run = run_timing_channel(&msg, &TimingConfig::default(), 500, &mut rng).unwrap();
        assert_eq!(run.quanta, 500);
    }
}
