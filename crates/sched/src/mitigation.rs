//! Evaluating scheduler designs as covert-channel mitigations.
//!
//! The paper (§3.2): *"Our method can be used to evaluate the
//! effectiveness of candidate system implementations, e.g., the
//! scheduler, in reducing covert channel capacities."* This module
//! packages that evaluation: run the same workload under each
//! candidate policy, measure `P_d`/`P_i`, and report the corrected
//! capacity the covert pair could still achieve.

use crate::covert::{measure_covert_channel, ChannelMeasurement};
use crate::error::SchedError;
use crate::policy::{FixedPriority, Lottery, Policy, RoundRobin, Stride, UniformRandom};
use crate::system::{Uniprocessor, WorkloadSpec};
use nsc_core::bounds::theorem5_lower_bound;
use nsc_info::BitsPerSymbol;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// The built-in policy family, as a value (so sweeps can iterate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PolicyKind {
    /// Deterministic cycling.
    RoundRobin,
    /// Strict precedence with round-robin tie-break.
    FixedPriority,
    /// Randomized proportional share.
    Lottery,
    /// Deterministic proportional share.
    Stride,
    /// Uniformly random among ready processes.
    UniformRandom,
    /// Multi-level feedback queue (default configuration).
    Mlfq,
}

impl PolicyKind {
    /// All built-in policies.
    pub const ALL: [PolicyKind; 6] = [
        PolicyKind::RoundRobin,
        PolicyKind::FixedPriority,
        PolicyKind::Lottery,
        PolicyKind::Stride,
        PolicyKind::UniformRandom,
        PolicyKind::Mlfq,
    ];

    /// Instantiates the policy.
    pub fn build(self) -> Box<dyn Policy> {
        match self {
            PolicyKind::RoundRobin => Box::new(RoundRobin::new()),
            PolicyKind::FixedPriority => Box::new(FixedPriority::new()),
            PolicyKind::Lottery => Box::new(Lottery::new()),
            PolicyKind::Stride => Box::new(Stride::new()),
            PolicyKind::UniformRandom => Box::new(UniformRandom::new()),
            PolicyKind::Mlfq => Box::new(
                crate::mlfq::Mlfq::new(crate::mlfq::MlfqConfig::default())
                    .expect("default MLFQ configuration is valid"),
            ),
        }
    }

    /// The policy's display name.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::RoundRobin => "round-robin",
            PolicyKind::FixedPriority => "fixed-priority",
            PolicyKind::Lottery => "lottery",
            PolicyKind::Stride => "stride",
            PolicyKind::UniformRandom => "uniform-random",
            PolicyKind::Mlfq => "mlfq",
        }
    }
}

/// One row of a mitigation study: how leaky is the covert channel
/// under this policy?
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MitigationReport {
    /// Policy evaluated.
    pub policy: PolicyKind,
    /// The raw measurement.
    pub measurement: ChannelMeasurement,
    /// Theorem 5 lower bound at the measured `(P_d, P_i)`: what a
    /// synchronized attacker can still achieve, in bits per
    /// covert-pair operation slot (paper normalization).
    pub achievable: BitsPerSymbol,
    /// The erasure upper bound `N·(1 − P_d)` at the measured `P_d`.
    pub upper_bound: BitsPerSymbol,
}

/// Evaluates one policy on a workload: runs the machine, measures the
/// channel, and computes the paper's bounds at the measured
/// parameters.
///
/// # Errors
///
/// Propagates trace-measurement and bound-computation failures (e.g.
/// full starvation under fixed priority yields measured `p_d = 1`,
/// which is still a valid bound input; an *empty* trace is not).
pub fn evaluate_policy(
    policy: PolicyKind,
    spec: &WorkloadSpec,
    bits: u32,
    quanta: usize,
    seed: u64,
) -> Result<MitigationReport, SchedError> {
    let mut system = Uniprocessor::new(spec.clone(), policy.build())?;
    let trace = system.run(quanta, &mut StdRng::seed_from_u64(seed));
    let measurement =
        measure_covert_channel(&trace, bits, &mut StdRng::seed_from_u64(seed ^ 0x5eed))?;
    // Clamp for the bound functions: measured rates are empirical and
    // may not satisfy p_d + p_i <= 1 (they are per-write and per-read
    // rates, not per-use rates), so bound them jointly.
    let p_d = measurement.p_d.min(1.0);
    let p_i = measurement.p_i.min(1.0 - p_d).min(0.999_999);
    let achievable = theorem5_lower_bound(bits, p_d, p_i)?;
    let upper_bound = nsc_core::bounds::erasure_upper_bound(bits, p_d)?;
    Ok(MitigationReport {
        policy,
        measurement,
        achievable,
        upper_bound,
    })
}

/// Evaluates every built-in policy on the same workload, returning
/// reports sorted from most to least leaky (by achievable rate).
///
/// # Errors
///
/// Propagates the first policy evaluation failure.
pub fn policy_study(
    spec: &WorkloadSpec,
    bits: u32,
    quanta: usize,
    seed: u64,
) -> Result<Vec<MitigationReport>, SchedError> {
    let mut reports = PolicyKind::ALL
        .iter()
        .map(|&k| evaluate_policy(k, spec, bits, quanta, seed))
        .collect::<Result<Vec<_>, _>>()?;
    reports.sort_by(|a, b| {
        b.achievable
            .value()
            .partial_cmp(&a.achievable.value())
            .expect("rates are finite")
    });
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_kind_roundtrip() {
        for k in PolicyKind::ALL {
            assert_eq!(k.build().name(), k.name());
        }
    }

    #[test]
    fn round_robin_is_leakiest_for_bare_pair() {
        let spec = WorkloadSpec::covert_pair();
        let reports = policy_study(&spec, 2, 40_000, 7).unwrap();
        assert_eq!(reports.len(), 6);
        // Deterministic alternation gives the covert pair a clean
        // channel; randomized policies degrade it.
        assert_eq!(reports[0].policy, PolicyKind::RoundRobin);
        let rr = &reports[0];
        assert_eq!(rr.measurement.p_d, 0.0);
        assert!((rr.achievable.value() - 2.0).abs() < 1e-9);
        // Lottery/uniform-random must be strictly worse for the
        // attacker.
        let lot = reports
            .iter()
            .find(|r| r.policy == PolicyKind::Lottery)
            .unwrap();
        assert!(lot.achievable.value() < rr.achievable.value() * 0.8);
    }

    #[test]
    fn achievable_never_exceeds_upper_bound() {
        let spec = WorkloadSpec::covert_pair().with_background(3, 0.7);
        for k in PolicyKind::ALL {
            let r = evaluate_policy(k, &spec, 3, 30_000, 11).unwrap();
            assert!(
                r.achievable.value() <= r.upper_bound.value() + 1e-9,
                "{:?}: {:?}",
                k,
                r
            );
        }
    }

    #[test]
    fn stride_pair_behaves_like_round_robin_for_equal_weights() {
        let spec = WorkloadSpec::covert_pair();
        let st = evaluate_policy(PolicyKind::Stride, &spec, 1, 20_000, 3).unwrap();
        // Equal-weight stride alternates deterministically.
        assert_eq!(st.measurement.p_d, 0.0);
        assert_eq!(st.measurement.p_i, 0.0);
    }

    #[test]
    fn starvation_produces_zero_capacity() {
        let spec = WorkloadSpec::covert_pair().map_sender(|p| p.with_priority(10));
        let r = evaluate_policy(PolicyKind::FixedPriority, &spec, 4, 5_000, 5).unwrap();
        // p_d -> 1: the channel is dead.
        assert!(r.achievable.value() < 0.02);
        assert!(r.upper_bound.value() < 0.02);
    }
}
