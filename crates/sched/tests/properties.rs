//! Property-based tests of the scheduler substrate.

use nsc_sched::covert::ops_from_trace;
use nsc_sched::mitigation::PolicyKind;
use nsc_sched::process::{Pid, Process, Role};
use nsc_sched::system::{Uniprocessor, WorkloadSpec};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a valid workload (one covert pair + background mix).
fn workload() -> impl Strategy<Value = WorkloadSpec> {
    (0usize..5, 0.1f64..=1.0, 1u32..5, 1u32..5).prop_map(|(bg, ready, ws, wr)| {
        WorkloadSpec::covert_pair()
            .map_sender(|p| p.with_weight(ws))
            .map_receiver(|p| p.with_weight(wr))
            .with_background(bg, ready)
    })
}

fn policy_kind() -> impl Strategy<Value = PolicyKind> {
    prop::sample::select(PolicyKind::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A trace always has the requested length, and every quantum
    /// names a valid pid or idle.
    #[test]
    fn traces_are_well_formed(
        spec in workload(),
        kind in policy_kind(),
        quanta in 1usize..3000,
        seed in 0u64..500,
    ) {
        let nproc = spec.processes().len();
        let mut sys = Uniprocessor::new(spec, kind.build()).unwrap();
        let trace = sys.run(quanta, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(trace.len(), quanta);
        let shares = trace.cpu_shares();
        prop_assert_eq!(shares.len(), nproc);
        let total: f64 = shares.iter().sum();
        prop_assert!(total <= 1.0 + 1e-9);
        prop_assert!((total + trace.idle_fraction() - 1.0).abs() < 1e-9);
    }

    /// Always-ready workloads never idle under any policy.
    #[test]
    fn greedy_workloads_never_idle(
        kind in policy_kind(),
        bg in 0usize..4,
        quanta in 1usize..2000,
        seed in 0u64..500,
    ) {
        let spec = WorkloadSpec::covert_pair().with_background(bg, 1.0);
        let mut sys = Uniprocessor::new(spec, kind.build()).unwrap();
        let trace = sys.run(quanta, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(trace.idle_fraction(), 0.0);
    }

    /// The extracted op schedule length equals the covert pair's
    /// quanta count.
    #[test]
    fn op_extraction_counts_match(
        spec in workload(),
        kind in policy_kind(),
        seed in 0u64..500,
    ) {
        let mut sys = Uniprocessor::new(spec, kind.build()).unwrap();
        let trace = sys.run(2000, &mut StdRng::seed_from_u64(seed));
        let ops = ops_from_trace(&trace);
        let covert = trace.count_role(Role::CovertSender)
            + trace.count_role(Role::CovertReceiver);
        prop_assert_eq!(ops.len(), covert);
    }

    /// Proportional-share policies track ticket ratios for greedy
    /// pairs (within sampling noise for lottery; exactly-ish for
    /// stride).
    #[test]
    fn proportional_share_tracks_weights(
        ws in 1u32..6,
        wr in 1u32..6,
        seed in 0u64..200,
    ) {
        let spec = WorkloadSpec::covert_pair()
            .map_sender(|p| p.with_weight(ws))
            .map_receiver(|p| p.with_weight(wr));
        let expected = ws as f64 / (ws + wr) as f64;
        for kind in [PolicyKind::Lottery, PolicyKind::Stride] {
            let mut sys = Uniprocessor::new(spec.clone(), kind.build()).unwrap();
            let trace = sys.run(30_000, &mut StdRng::seed_from_u64(seed));
            let share = trace.count_role(Role::CovertSender) as f64 / trace.len() as f64;
            prop_assert!(
                (share - expected).abs() < 0.03,
                "{:?}: share {share} expected {expected}", kind
            );
        }
    }

    /// Round-robin with a greedy pair alternates exactly regardless
    /// of seed.
    #[test]
    fn round_robin_alternation_is_seed_independent(seed in 0u64..1000) {
        let mut sys = Uniprocessor::new(
            WorkloadSpec::covert_pair(), PolicyKind::RoundRobin.build()).unwrap();
        let trace = sys.run(100, &mut StdRng::seed_from_u64(seed));
        for i in 0..100 {
            let expect = if i % 2 == 0 { Role::CovertSender } else { Role::CovertReceiver };
            prop_assert_eq!(trace.role_at(i), Some(expect));
        }
    }

    /// Pid sanity: every running pid indexes the process table.
    #[test]
    fn pids_in_range(spec in workload(), kind in policy_kind(), seed in 0u64..200) {
        let n = spec.processes().len();
        let mut sys = Uniprocessor::new(spec, kind.build()).unwrap();
        let trace = sys.run(500, &mut StdRng::seed_from_u64(seed));
        for q in trace.quanta() {
            if let nsc_sched::trace::Quantum::Ran(Pid(p)) = q {
                prop_assert!(*p < n);
            }
        }
    }
}

/// Non-proptest sanity check: Process builder panics are reachable
/// only through misuse, not through the strategies above.
#[test]
fn process_builder_contract() {
    let p = Process::greedy(Role::Background).with_ready_prob(0.5);
    assert_eq!(p.ready_prob, 0.5);
}
